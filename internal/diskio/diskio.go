// Package diskio models the disk-resident setting of the paper's evaluation:
// the SILC quadtrees and the network adjacency lists live in fixed-size
// pages behind an LRU buffer pool sized to a fraction of the total page
// count (the paper uses 5%). Algorithms report page hits/misses and a
// modeled I/O time (misses x per-miss latency), reproducing the paper's
// "I/O time dominates" analysis without a physical disk.
//
// The buffer pool is sharded: page ids hash onto N independently
// mutex-guarded LRU shards, so unlimited concurrent queries can share one
// pool without serializing on a single lock. Aggregate hit/miss counters are
// atomic; per-query attribution happens through a query-owned *Stats counter
// passed into every Touch call (nil for untracked access).
package diskio

import (
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// PageID identifies one page across all paged structures of an index.
type PageID int64

// DefaultPageSize is the modeled page size in bytes.
const DefaultPageSize = 4096

// DefaultMissLatency is the modeled cost of one page miss. The paper's
// absolute timings imply buffered reads through the OS page cache rather
// than raw seeks (its 1GB evaluation machine held the working set), so the
// default models a buffered 4KiB read, which reproduces the paper's
// magnitudes; raise it toward 5ms to model a cold spinning disk.
const DefaultMissLatency = 200 * time.Microsecond

// AdjacencyEntrySize is the modeled on-disk size of one directed edge in a
// network database: target, weight, and the road-segment record (name,
// geometry) that real road databases carry alongside connectivity.
const AdjacencyEntrySize = 48

// Stats counts buffer-pool traffic. Hits/Misses/Evictions are charged
// by the pool itself; Reads and BlocksDecoded are charged by the paged
// store (the only layer that knows whether a miss turned into a real
// positioned read and how many quadtree blocks a cold load decoded) —
// they ride here so one counter follows the per-query attribution
// plumbing through every layer.
type Stats struct {
	Hits   int64
	Misses int64
	// Evictions counts pages this counter's touches displaced from the
	// pool. Like Hits/Misses it is charged exactly once per displaced
	// page, so per-query sums reproduce pool aggregates.
	Evictions int64
	// Reads counts real positioned page reads a paged store performed
	// (zero on modeled pools, where a miss only costs modeled latency).
	Reads int64
	// BlocksDecoded counts quadtree blocks decoded on cold tree
	// materializations (zero on in-RAM indexes).
	BlocksDecoded int64
}

// Accesses returns total page touches.
func (s Stats) Accesses() int64 { return s.Hits + s.Misses }

// Add accumulates o into s.
func (s *Stats) Add(o Stats) {
	s.Hits += o.Hits
	s.Misses += o.Misses
	s.Evictions += o.Evictions
	s.Reads += o.Reads
	s.BlocksDecoded += o.BlocksDecoded
}

// ModeledIOTime converts the miss count into modeled elapsed I/O time.
func (s Stats) ModeledIOTime(missLatency time.Duration) time.Duration {
	return time.Duration(s.Misses) * missLatency
}

// Cache is a single LRU page list — the building block of one Pool shard.
// The zero value is unusable; create with NewCache. Not safe for concurrent
// use on its own: Pool guards each Cache with its shard mutex.
//
// Two representations back the same LRU semantics, picked by capacity. At or
// below smallCacheMax, pages live in one array kept in MRU order: lookup is
// a linear scan and move-to-front a short copy, all within a cache line or
// two — the common shape for modeled pools, whose 5% capacity shards into a
// handful of pages each. Above it, the page -> slot map is an open-addressed
// table (Fibonacci hashing, linear probing, backward-shift deletion) over a
// doubly-linked slot list — a couple of flat array probes with no Go-map
// hashing overhead and no tombstone accumulation.
type Cache struct {
	capacity int
	// Small representation: pages[0:used] in MRU order.
	// Large representation: pages indexed by stable slot; table/prev/next
	// maintain the hash map and recency list.
	pages []PageID
	table []int32 // open-addressed: slot index, or -1 for empty; nil in small mode
	mask  uint64  // len(table)-1; len is a power of two
	shift uint    // 64 - log2(len(table)), for Fibonacci hashing
	prev  []int32
	next  []int32
	head  int32 // most recently used
	tail  int32 // least recently used
	used  int
	stats Stats
}

// smallCacheMax is the largest capacity served by the MRU-array
// representation: 16 pages span two cache lines, which a scan-plus-shift
// handles faster than any hash probe sequence.
const smallCacheMax = 16

// NewCache returns an LRU cache holding up to capacity pages (minimum 1).
func NewCache(capacity int) *Cache {
	if capacity < 1 {
		capacity = 1
	}
	c := &Cache{
		capacity: capacity,
		pages:    make([]PageID, capacity),
		head:     -1,
		tail:     -1,
	}
	if capacity <= smallCacheMax {
		return c
	}
	// Table sized to the next power of two past 2x capacity keeps the load
	// factor at or below 0.5, so linear probe chains stay short.
	size := 8
	for size < 2*capacity {
		size <<= 1
	}
	log2 := 0
	for 1<<log2 < size {
		log2++
	}
	c.table = make([]int32, size)
	c.mask = uint64(size - 1)
	c.shift = uint(64 - log2)
	c.prev = make([]int32, capacity)
	c.next = make([]int32, capacity)
	for i := range c.table {
		c.table[i] = -1
	}
	return c
}

// home returns p's preferred table index (Fibonacci hashing).
func (c *Cache) home(p PageID) uint64 {
	return (uint64(p) * 0x9E3779B97F4A7C15) >> c.shift
}

// find probes for p, returning its table index and slot, or tableIdx with
// slot -1 when absent (tableIdx then points at the empty probe endpoint).
func (c *Cache) find(p PageID) (tableIdx uint64, slot int32) {
	i := c.home(p)
	for {
		s := c.table[i]
		if s < 0 || c.pages[s] == p {
			return i, s
		}
		i = (i + 1) & c.mask
	}
}

// unlink removes the entry at table index i, backward-shifting the probe
// chain behind it so future probes never cross a hole mid-chain.
func (c *Cache) unlink(i uint64) {
	j := i
	for {
		c.table[i] = -1
		for {
			j = (j + 1) & c.mask
			s := c.table[j]
			if s < 0 {
				return
			}
			h := c.home(c.pages[s])
			// Move s up to the hole unless its home lies in (i, j] — in
			// cyclic terms — in which case the chain still reaches it.
			var reachable bool
			if i <= j {
				reachable = h > i && h <= j
			} else {
				reachable = h > i || h <= j
			}
			if !reachable {
				c.table[i] = s
				i = j
				break
			}
		}
	}
}

// Capacity returns the configured page capacity.
func (c *Cache) Capacity() int { return c.capacity }

// Len returns the number of resident pages.
func (c *Cache) Len() int { return c.used }

// Stats returns the accumulated hit/miss counts.
func (c *Cache) Stats() Stats { return c.stats }

// ResetStats zeroes the counters without evicting pages.
func (c *Cache) ResetStats() { c.stats = Stats{} }

// Clear evicts everything and zeroes the counters.
func (c *Cache) Clear() {
	for i := range c.table {
		c.table[i] = -1
	}
	c.head, c.tail, c.used = -1, -1, 0
	c.stats = Stats{}
}

// touchSmall is TouchEvict for the MRU-array representation.
func (c *Cache) touchSmall(p PageID) (hit bool, evicted PageID, hasEvict bool) {
	pages := c.pages
	for i := 0; i < c.used; i++ {
		if pages[i] == p {
			c.stats.Hits++
			copy(pages[1:i+1], pages[:i])
			pages[0] = p
			return true, 0, false
		}
	}
	c.stats.Misses++
	if c.used < c.capacity {
		c.used++
	} else {
		evicted, hasEvict = pages[c.used-1], true
		c.stats.Evictions++
	}
	copy(pages[1:c.used], pages[:c.used-1])
	pages[0] = p
	return false, evicted, hasEvict
}

// Touch accesses page p, returning true on a hit. On a miss the page is
// loaded, evicting the least recently used page if the pool is full.
func (c *Cache) Touch(p PageID) bool {
	hit, _, _ := c.TouchEvict(p)
	return hit
}

// TouchEvict is Touch with eviction feedback: when loading p displaced a
// resident page, evicted holds its id and hasEvict is true. Callers that
// cache decoded structures against resident pages (the paged index store)
// use the feedback to actually release the displaced data.
func (c *Cache) TouchEvict(p PageID) (hit bool, evicted PageID, hasEvict bool) {
	if c.table == nil {
		return c.touchSmall(p)
	}
	ti, slot := c.find(p)
	if slot >= 0 {
		c.stats.Hits++
		c.moveToFront(slot)
		return true, 0, false
	}
	c.stats.Misses++
	if c.used < c.capacity {
		slot = int32(c.used)
		c.used++
	} else {
		slot = c.tail
		c.detach(slot)
		evicted, hasEvict = c.pages[slot], true
		c.stats.Evictions++
		evIdx, _ := c.find(evicted)
		c.unlink(evIdx)
		// The backward shift may have filled the probe endpoint found for p;
		// re-probe from p's home.
		for ti = c.home(p); c.table[ti] >= 0; ti = (ti + 1) & c.mask {
		}
	}
	c.pages[slot] = p
	c.table[ti] = slot
	c.pushFront(slot)
	return false, evicted, hasEvict
}

func (c *Cache) detach(slot int32) {
	p, n := c.prev[slot], c.next[slot]
	if p >= 0 {
		c.next[p] = n
	} else {
		c.head = n
	}
	if n >= 0 {
		c.prev[n] = p
	} else {
		c.tail = p
	}
}

func (c *Cache) pushFront(slot int32) {
	c.prev[slot] = -1
	c.next[slot] = c.head
	if c.head >= 0 {
		c.prev[c.head] = slot
	}
	c.head = slot
	if c.tail < 0 {
		c.tail = slot
	}
}

func (c *Cache) moveToFront(slot int32) {
	if c.head == slot {
		return
	}
	c.detach(slot)
	c.pushFront(slot)
}

// DefaultPoolShards is the shard count of a sharded buffer pool. Power of
// two so shard selection is a mask; large enough that tens of goroutines
// rarely collide on one shard mutex.
const DefaultPoolShards = 64

// Pool is a sharded LRU buffer pool, safe for unlimited concurrent users.
// Pages hash onto shards (Fibonacci hashing of the PageID), each shard is a
// mutex-guarded Cache holding its slice of the total capacity. Hit/miss
// aggregates live in the per-shard caches — already under the shard mutex the
// touch holds — rather than in pool-wide atomics, so concurrent queries never
// ping-pong a shared counter cache line; Stats sums across shards on demand.
// Per-shard LRU approximates global LRU the way production buffer managers
// do: eviction order is exact within a shard and pages spread uniformly
// across shards.
type Pool struct {
	shards []poolShard
	shift  uint // 64 - log2(len(shards))
}

type poolShard struct {
	mu  sync.Mutex
	lru *Cache
	// Pad to a 64-byte cache line (8 mutex + 8 pointer + 48) so neighboring
	// shard mutexes don't false-share.
	_ [48]byte
}

// NewPool returns a sharded pool of the given total page capacity (minimum
// 1). The shard count is reduced below shards when the capacity is too small
// to give every shard at least one page.
func NewPool(capacity, shards int) *Pool {
	if capacity < 1 {
		capacity = 1
	}
	if shards < 1 {
		shards = 1
	}
	for shards > 1 && (shards&(shards-1)) != 0 {
		shards-- // round down to a power of two
	}
	for shards > capacity {
		shards >>= 1
	}
	p := &Pool{shards: make([]poolShard, shards)}
	log2 := 0
	for 1<<log2 < shards {
		log2++
	}
	p.shift = uint(64 - log2)
	base, rem := capacity/shards, capacity%shards
	for i := range p.shards {
		c := base
		if i < rem {
			c++
		}
		p.shards[i].lru = NewCache(c)
	}
	return p
}

// shardOf maps a page id onto its shard by Fibonacci hashing.
func (p *Pool) shardOf(id PageID) *poolShard {
	if len(p.shards) == 1 {
		return &p.shards[0]
	}
	return &p.shards[(uint64(id)*0x9E3779B97F4A7C15)>>p.shift]
}

// Touch accesses page id, returning true on a hit. The access is counted in
// the pool's atomic aggregates and, when qs is non-nil, in the caller's
// per-query counter (qs must be owned by the calling goroutine).
func (p *Pool) Touch(id PageID, qs *Stats) bool {
	hit, _, _ := p.TouchEvict(id, qs)
	return hit
}

// TouchEvict is Touch with eviction feedback (see Cache.TouchEvict). The
// per-query counter qs is charged with exactly one hit or one miss — the
// same outcome added to the pool's atomic aggregates — so summing the
// per-query counters of all users reproduces the aggregates exactly.
func (p *Pool) TouchEvict(id PageID, qs *Stats) (hit bool, evicted PageID, hasEvict bool) {
	s := p.shardOf(id)
	s.mu.Lock()
	hit, evicted, hasEvict = s.lru.TouchEvict(id)
	s.mu.Unlock()
	if qs != nil {
		if hit {
			qs.Hits++
		} else {
			qs.Misses++
		}
		if hasEvict {
			qs.Evictions++
		}
	}
	return hit, evicted, hasEvict
}

// Capacity returns the total page capacity across shards.
func (p *Pool) Capacity() int {
	total := 0
	for i := range p.shards {
		total += p.shards[i].lru.Capacity()
	}
	return total
}

// NumShards returns the shard count.
func (p *Pool) NumShards() int { return len(p.shards) }

// ShardStats returns shard i's hit/miss/eviction counters — the
// per-shard breakdown behind the Stats aggregate, for observability.
func (p *Pool) ShardStats(i int) Stats {
	s := &p.shards[i]
	s.mu.Lock()
	st := s.lru.Stats()
	s.mu.Unlock()
	return st
}

// ShardLen returns shard i's resident page count.
func (p *Pool) ShardLen(i int) int {
	s := &p.shards[i]
	s.mu.Lock()
	n := s.lru.Len()
	s.mu.Unlock()
	return n
}

// Len returns the number of resident pages across shards.
func (p *Pool) Len() int {
	total := 0
	for i := range p.shards {
		s := &p.shards[i]
		s.mu.Lock()
		total += s.lru.Len()
		s.mu.Unlock()
	}
	return total
}

// Stats returns the aggregate hit/miss counters summed across shards.
func (p *Pool) Stats() Stats {
	var total Stats
	for i := range p.shards {
		s := &p.shards[i]
		s.mu.Lock()
		total.Add(s.lru.Stats())
		s.mu.Unlock()
	}
	return total
}

// ResetStats zeroes the aggregate counters without evicting pages.
func (p *Pool) ResetStats() {
	for i := range p.shards {
		s := &p.shards[i]
		s.mu.Lock()
		s.lru.ResetStats()
		s.mu.Unlock()
	}
}

// Clear evicts every page and zeroes the counters.
func (p *Pool) Clear() {
	for i := range p.shards {
		s := &p.shards[i]
		s.mu.Lock()
		s.lru.Clear()
		s.mu.Unlock()
	}
	p.ResetStats()
}

// Layout maps (owner, entry) coordinates onto a dense page range: owner v's
// entries start at a prefix-sum base and pack entriesPerPage to a page.
// It describes how per-vertex SILC block arrays (or adjacency lists) are
// serialized onto disk.
type Layout struct {
	base           []int64  // per-owner first entry index; len = owners+1
	firstPage      []PageID // per-owner page of entry 0, precomputed; len = owners
	entriesPerPage int
	// pageShift is log2(entriesPerPage) when it is a power of two, else -1.
	// Entry -> page is then a shift instead of a 64-bit division — the
	// mapping sits on the per-lookup hot path of every tracked algorithm.
	pageShift int
}

// NewLayout builds a layout for owners with the given per-owner entry
// counts, entries of entrySize bytes, on pages of pageSize bytes.
func NewLayout(entryCounts []int, entrySize, pageSize int) *Layout {
	if entrySize <= 0 || pageSize < entrySize {
		panic("diskio: invalid entry/page size")
	}
	base := make([]int64, len(entryCounts)+1)
	for i, n := range entryCounts {
		base[i+1] = base[i] + int64(n)
	}
	epp := pageSize / entrySize
	shift := -1
	if epp&(epp-1) == 0 {
		shift = 0
		for 1<<shift < epp {
			shift++
		}
	}
	first := make([]PageID, len(entryCounts))
	for i := range first {
		first[i] = PageID(base[i] / int64(epp))
	}
	return &Layout{base: base, firstPage: first, entriesPerPage: epp, pageShift: shift}
}

// Page returns the page holding entry entryIdx of owner v.
func (l *Layout) Page(v int, entryIdx int) PageID {
	e := l.base[v] + int64(entryIdx)
	if l.pageShift >= 0 {
		return PageID(e >> uint(l.pageShift))
	}
	return PageID(e / int64(l.entriesPerPage))
}

// EntryRange returns the dense entry index range [lo, hi) of owner v.
func (l *Layout) EntryRange(v int) (lo, hi int64) { return l.base[v], l.base[v+1] }

// EntriesPerPage returns how many entries pack onto one page.
func (l *Layout) EntriesPerPage() int { return l.entriesPerPage }

// OwnerPages returns the page range [first, last] spanned by owner v's
// entries; ok is false when v has none.
func (l *Layout) OwnerPages(v int) (first, last PageID, ok bool) {
	lo, hi := l.base[v], l.base[v+1]
	if lo == hi {
		return 0, 0, false
	}
	return l.firstPage[v], PageID((hi - 1) / int64(l.entriesPerPage)), true
}

// FirstPage returns the page of owner v's first entry; ok is false when v
// has no entries. Division-free: the per-owner first page is precomputed.
func (l *Layout) FirstPage(v int) (PageID, bool) {
	if l.base[v] == l.base[v+1] {
		return 0, false
	}
	return l.firstPage[v], true
}

// OwnerRange inverts Page: it returns the owner index range [lo, hi) whose
// entries overlap the given page (empty when the page is past the layout).
// Entries pack densely, so a page boundary can split an owner's run and one
// page can hold runs of many owners.
func (l *Layout) OwnerRange(page PageID) (lo, hi int) {
	owners := len(l.base) - 1
	first := int64(page) * int64(l.entriesPerPage)
	last := first + int64(l.entriesPerPage) // one past the page's entries
	// lo: first owner whose run ends after the page starts.
	lo = sort.Search(owners, func(v int) bool { return l.base[v+1] > first })
	// hi: first owner whose run starts at or past the page's end.
	hi = sort.Search(owners, func(v int) bool { return l.base[v] >= last })
	if hi < lo {
		hi = lo
	}
	return lo, hi
}

// TotalPages returns the number of pages the layout occupies.
func (l *Layout) TotalPages() int64 {
	total := l.base[len(l.base)-1]
	if total == 0 {
		return 0
	}
	return (total-1)/int64(l.entriesPerPage) + 1
}

// Tracker combines the SILC block layout and the adjacency layout behind one
// sharded buffer pool with disjoint page-id spaces. A nil *Tracker is valid
// and counts nothing (the pure in-memory configuration). Touch methods are
// safe for unlimited concurrent callers; each caller attributes its own
// traffic through the *Stats counter it passes in. Reconfiguration
// (SetScope, ClearCache) swaps or clears the pool atomically, so racing
// queries cannot corrupt it — their traffic simply lands in whichever pool
// they observe.
type Tracker struct {
	pool        atomic.Pointer[Pool]
	blocks      *Layout
	adjacency   *Layout
	adjBase     PageID
	fraction    float64
	missLatency time.Duration
	// fixed pins the pool: SetScope becomes a no-op. Store-backed trackers
	// (real on-disk pages) set it — their pool's residency is mirrored by
	// actual page frames, so it must never be swapped out from under the
	// store.
	fixed bool
	// onEvict, when set, observes every page the pool evicts through this
	// tracker's Touch methods. The paged store uses it to release the real
	// page frame and any decoded structures built over the evicted page.
	onEvict func(PageID)
}

// NewTracker builds a tracker for a database whose per-vertex SILC block
// counts and adjacency degrees are given. cacheFraction sizes the LRU pool
// as a fraction of total pages (the paper: 0.05).
func NewTracker(blockCounts, degrees []int, cacheFraction float64, missLatency time.Duration) *Tracker {
	blocks := NewLayout(blockCounts, 16, DefaultPageSize)
	adjacency := NewLayout(degrees, AdjacencyEntrySize, DefaultPageSize)
	total := blocks.TotalPages() + adjacency.TotalPages()
	if missLatency <= 0 {
		missLatency = DefaultMissLatency
	}
	t := &Tracker{
		blocks:      blocks,
		adjacency:   adjacency,
		adjBase:     PageID(blocks.TotalPages()),
		fraction:    cacheFraction,
		missLatency: missLatency,
	}
	t.pool.Store(NewPool(int(float64(total)*cacheFraction), DefaultPoolShards))
	return t
}

// NewStoreTracker wires a Tracker around an externally owned pool backing a
// real on-disk block store. blockPages is the page count of the (externally
// paged) block sections; the adjacency layout gets the id space just above
// them. TouchBlock is a no-op — a real store charges its own page traffic —
// and SetScope is disabled: the pool's residency is mirrored by actual page
// frames and must not be swapped.
func NewStoreTracker(blockPages int64, degrees []int, pool *Pool, missLatency time.Duration) *Tracker {
	if missLatency <= 0 {
		missLatency = DefaultMissLatency
	}
	t := &Tracker{
		adjacency:   NewLayout(degrees, AdjacencyEntrySize, DefaultPageSize),
		adjBase:     PageID(blockPages),
		missLatency: missLatency,
		fixed:       true,
	}
	t.pool.Store(pool)
	return t
}

// SetEvictionHandler registers fn to observe every page evicted by this
// tracker's Touch methods. Call before queries start; not synchronized with
// concurrent touches.
func (t *Tracker) SetEvictionHandler(fn func(PageID)) {
	if t != nil {
		t.onEvict = fn
	}
}

// Pool returns the current buffer pool (nil for a nil tracker).
func (t *Tracker) Pool() *Pool {
	if t == nil {
		return nil
	}
	return t.pool.Load()
}

// SetScope resizes the buffer pool for the database an algorithm actually
// runs against, starting it cold. The SILC-driven algorithms page the block
// store plus the network; the graph-expansion baselines (INE, IER) carry no
// SILC store, so their pool is the cache fraction of the network pages
// alone — sizing their pool by someone else's index would hand them an
// effectively unbounded cache.
func (t *Tracker) SetScope(networkOnly bool) {
	if t == nil || t.fixed {
		return
	}
	total := t.adjacency.TotalPages()
	if !networkOnly {
		total += t.blocks.TotalPages()
	}
	t.pool.Store(NewPool(int(float64(total)*t.fraction), DefaultPoolShards))
}

// TouchBlock records an access to block entryIdx of vertex v's quadtree,
// attributing it to the per-query counter qs (nil for untracked access).
// No-op on store-backed trackers: the real store charges its own pages.
func (t *Tracker) TouchBlock(v, entryIdx int, qs *Stats) {
	if t == nil || t.blocks == nil {
		return
	}
	t.touch(t.blocks.Page(v, entryIdx), qs)
}

// TouchAdjacency records an access to vertex v's adjacency list (INE/IER
// expansion step), attributed to qs. Lists rarely straddle pages; the first
// page is charged.
func (t *Tracker) TouchAdjacency(v int, qs *Stats) {
	if t == nil {
		return
	}
	first, ok := t.adjacency.FirstPage(v)
	if !ok {
		return
	}
	t.touch(t.adjBase+first, qs)
}

// touch charges one page and feeds any eviction to the registered handler.
func (t *Tracker) touch(id PageID, qs *Stats) {
	_, evicted, hasEvict := t.pool.Load().TouchEvict(id, qs)
	if hasEvict && t.onEvict != nil {
		t.onEvict(evicted)
	}
}

// Stats returns the pool-wide aggregate counters (zero for a nil tracker).
func (t *Tracker) Stats() Stats {
	if t == nil {
		return Stats{}
	}
	return t.pool.Load().Stats()
}

// ResetStats zeroes the aggregate counters, keeping cache contents warm
// (queries in a batch share the pool, as in the paper's repeated-query
// setup).
func (t *Tracker) ResetStats() {
	if t != nil {
		t.pool.Load().ResetStats()
	}
}

// ClearCache evicts all pages and zeroes the counters — the cold-start state
// at the beginning of one algorithm's query batch.
func (t *Tracker) ClearCache() {
	if t != nil {
		t.pool.Load().Clear()
	}
}

// MissLatency returns the modeled per-miss latency (the default for a nil
// tracker).
func (t *Tracker) MissLatency() time.Duration {
	if t == nil {
		return DefaultMissLatency
	}
	return t.missLatency
}

// ModeledIOTime converts current aggregate miss counts into modeled I/O
// time.
func (t *Tracker) ModeledIOTime() time.Duration {
	if t == nil {
		return 0
	}
	return t.pool.Load().Stats().ModeledIOTime(t.missLatency)
}

// TotalPages returns the page count across the block and adjacency id
// spaces (adjBase always equals the block page count, whether the block
// layout is modeled or externally paged).
func (t *Tracker) TotalPages() int64 {
	if t == nil {
		return 0
	}
	return int64(t.adjBase) + t.adjacency.TotalPages()
}
