package diskio

import (
	"math/rand"
	"sync"
	"testing"
)

// TestPerQueryStatsSumToAggregates is the double-counting regression test:
// with 64 concurrent "queries" each touching pages through its own Stats
// counter, the per-query counters must sum EXACTLY to the pool's atomic
// aggregates — every touch charged once to each, never zero or twice.
func TestPerQueryStatsSumToAggregates(t *testing.T) {
	const (
		goroutines = 64
		touches    = 2000
		pages      = 512
		capacity   = 40
	)
	pool := NewPool(capacity, DefaultPoolShards)
	perQuery := make([]Stats, goroutines)
	var wg sync.WaitGroup
	for i := 0; i < goroutines; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(i) * 911))
			for j := 0; j < touches; j++ {
				// Mix of Touch and TouchEvict — both must charge identically.
				id := PageID(rng.Intn(pages))
				if j%2 == 0 {
					pool.Touch(id, &perQuery[i])
				} else {
					pool.TouchEvict(id, &perQuery[i])
				}
			}
		}(i)
	}
	wg.Wait()

	var sum Stats
	for i := range perQuery {
		if got := perQuery[i].Accesses(); got != touches {
			t.Fatalf("query %d recorded %d accesses, made %d", i, got, touches)
		}
		sum.Add(perQuery[i])
	}
	agg := pool.Stats()
	if sum != agg {
		t.Fatalf("per-query sum %+v != pool aggregates %+v", sum, agg)
	}
	if want := int64(goroutines * touches); sum.Accesses() != want {
		t.Fatalf("total accesses %d, want %d", sum.Accesses(), want)
	}
}

// TestTrackerPerQuerySum runs the same invariant through the Tracker's
// block/adjacency touch paths (the ones real queries use).
func TestTrackerPerQuerySum(t *testing.T) {
	const goroutines = 64
	blockCounts := make([]int, 300)
	degrees := make([]int, 300)
	for i := range blockCounts {
		blockCounts[i] = 40 + i%37
		degrees[i] = 3 + i%4
	}
	tr := NewTracker(blockCounts, degrees, 0.05, 0)
	perQuery := make([]Stats, goroutines)
	var wg sync.WaitGroup
	for i := 0; i < goroutines; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(i) * 313))
			for j := 0; j < 1500; j++ {
				v := rng.Intn(len(blockCounts))
				if j%3 == 0 {
					tr.TouchAdjacency(v, &perQuery[i])
				} else {
					tr.TouchBlock(v, rng.Intn(blockCounts[v]), &perQuery[i])
				}
			}
		}(i)
	}
	wg.Wait()
	var sum Stats
	for i := range perQuery {
		sum.Add(perQuery[i])
	}
	if agg := tr.Stats(); sum != agg {
		t.Fatalf("per-query sum %+v != tracker aggregates %+v", sum, agg)
	}
}

// TestOwnerRangeInvertsPage cross-checks Layout.OwnerRange against the
// forward Page map on an irregular layout.
func TestOwnerRangeInvertsPage(t *testing.T) {
	counts := []int{0, 3, 700, 1, 0, 256, 255, 257, 0, 12}
	l := NewLayout(counts, 16, 4096)
	for p := PageID(0); p < PageID(l.TotalPages()); p++ {
		lo, hi := l.OwnerRange(p)
		for v := range counts {
			overlaps := false
			for e := 0; e < counts[v]; e++ {
				if l.Page(v, e) == p {
					overlaps = true
					break
				}
			}
			inRange := v >= lo && v < hi
			if overlaps && !inRange {
				t.Fatalf("page %d: owner %d overlaps but OwnerRange [%d,%d) misses it", p, v, lo, hi)
			}
			if !overlaps && inRange && counts[v] > 0 {
				t.Fatalf("page %d: owner %d in OwnerRange [%d,%d) but has no entry there", p, v, lo, hi)
			}
		}
	}
	// Past-the-end page must be empty.
	if lo, hi := l.OwnerRange(PageID(l.TotalPages()) + 5); lo != hi {
		t.Fatalf("past-end page returned non-empty owner range [%d,%d)", lo, hi)
	}
}
