package diskio

import (
	"sync"
	"testing"
	"time"
)

func TestCacheHitMiss(t *testing.T) {
	c := NewCache(2)
	if c.Touch(1) {
		t.Fatal("first touch should miss")
	}
	if !c.Touch(1) {
		t.Fatal("second touch should hit")
	}
	c.Touch(2) // miss; pool now {1,2}
	if !c.Touch(1) || !c.Touch(2) {
		t.Fatal("both pages should be resident")
	}
	c.Touch(3) // evicts LRU = 1
	if c.Touch(1) {
		t.Fatal("page 1 should have been evicted")
	}
	s := c.Stats()
	if s.Hits != 3 || s.Misses != 4 {
		t.Fatalf("stats = %+v", s)
	}
	if c.Len() != 2 || c.Capacity() != 2 {
		t.Fatalf("len/capacity = %d/%d", c.Len(), c.Capacity())
	}
}

func TestCacheLRUOrder(t *testing.T) {
	c := NewCache(3)
	c.Touch(1)
	c.Touch(2)
	c.Touch(3)
	c.Touch(1) // 1 becomes MRU; LRU order now 2,3,1
	c.Touch(4) // evicts 2; residents {3,1,4}
	if !c.Touch(3) || !c.Touch(1) || !c.Touch(4) {
		t.Fatal("3, 1, 4 should all be resident")
	}
	if c.Touch(2) {
		t.Fatal("2 should have been evicted")
	}
}

func TestCacheMinimumCapacity(t *testing.T) {
	c := NewCache(0)
	if c.Capacity() != 1 {
		t.Fatalf("capacity = %d", c.Capacity())
	}
	c.Touch(1)
	c.Touch(2)
	if c.Touch(1) {
		t.Fatal("capacity-1 cache should evict on every new page")
	}
}

func TestCacheClearAndResetStats(t *testing.T) {
	c := NewCache(4)
	c.Touch(1)
	c.Touch(1)
	c.ResetStats()
	if s := c.Stats(); s.Hits != 0 || s.Misses != 0 {
		t.Fatalf("stats after reset = %+v", s)
	}
	if !c.Touch(1) {
		t.Fatal("page should still be resident after ResetStats")
	}
	c.Clear()
	if c.Touch(1) {
		t.Fatal("page should be gone after Clear")
	}
	if c.Len() != 1 {
		t.Fatalf("len = %d", c.Len())
	}
}

func TestStatsModeledIOTime(t *testing.T) {
	s := Stats{Hits: 10, Misses: 3}
	if got := s.ModeledIOTime(5 * time.Millisecond); got != 15*time.Millisecond {
		t.Fatalf("ModeledIOTime = %v", got)
	}
	if s.Accesses() != 13 {
		t.Fatalf("Accesses = %d", s.Accesses())
	}
	var sum Stats
	sum.Add(s)
	sum.Add(s)
	if sum.Hits != 20 || sum.Misses != 6 {
		t.Fatalf("Add = %+v", sum)
	}
}

func TestLayoutPaging(t *testing.T) {
	// Three owners with 10, 0, 300 entries of 16 bytes on 4096-byte pages
	// (256 entries per page).
	l := NewLayout([]int{10, 0, 300}, 16, 4096)
	if l.TotalPages() != 2 {
		t.Fatalf("TotalPages = %d", l.TotalPages())
	}
	if got := l.Page(0, 0); got != 0 {
		t.Fatalf("Page(0,0) = %d", got)
	}
	if got := l.Page(2, 0); got != 0 { // entry 10 of the global array
		t.Fatalf("Page(2,0) = %d", got)
	}
	if got := l.Page(2, 250); got != 1 { // entry 260 crosses into page 1
		t.Fatalf("Page(2,250) = %d", got)
	}
	first, last, ok := l.OwnerPages(2)
	if !ok || first != 0 || last != 1 {
		t.Fatalf("OwnerPages(2) = %d,%d,%v", first, last, ok)
	}
	if _, _, ok := l.OwnerPages(1); ok {
		t.Fatal("owner 1 has no entries")
	}
}

func TestLayoutEmpty(t *testing.T) {
	l := NewLayout([]int{0, 0}, 16, 4096)
	if l.TotalPages() != 0 {
		t.Fatalf("TotalPages = %d", l.TotalPages())
	}
}

func TestLayoutPanicsOnBadSizes(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewLayout([]int{1}, 100, 50)
}

func TestTrackerDisjointSpacesAndNil(t *testing.T) {
	tr := NewTracker([]int{300, 300}, []int{4, 4}, 1.0, time.Millisecond)
	tr.TouchBlock(0, 0, nil)
	tr.TouchAdjacency(0, nil)
	tr.TouchAdjacency(1, nil)
	s := tr.Stats()
	// Block page 0 and adjacency page (shared by both tiny lists) are
	// distinct pages: 2 misses, 1 hit.
	if s.Misses != 2 || s.Hits != 1 {
		t.Fatalf("stats = %+v", s)
	}
	if got := tr.ModeledIOTime(); got != 2*time.Millisecond {
		t.Fatalf("ModeledIOTime = %v", got)
	}
	// 600 block entries at 256/page = 3 pages, plus one adjacency page
	// (8 edges at 48B fit one page).
	if tr.TotalPages() != 4 {
		t.Fatalf("TotalPages = %d", tr.TotalPages())
	}

	var nilTracker *Tracker
	nilTracker.TouchBlock(0, 0, nil)
	nilTracker.TouchAdjacency(0, nil)
	nilTracker.ResetStats()
	if s := nilTracker.Stats(); s != (Stats{}) {
		t.Fatalf("nil tracker stats = %+v", s)
	}
	if nilTracker.ModeledIOTime() != 0 || nilTracker.TotalPages() != 0 {
		t.Fatal("nil tracker should report zeros")
	}
}

func TestTrackerCacheFraction(t *testing.T) {
	// 1000 blocks of 16B = 4 pages; 1000 adjacency entries of 48B = 12
	// pages (85/page). 50% fraction => capacity 8.
	tr := NewTracker([]int{1000}, []int{1000}, 0.5, 0)
	if tr.Pool().Capacity() != 8 {
		t.Fatalf("capacity = %d", tr.Pool().Capacity())
	}
	if tr.missLatency != DefaultMissLatency {
		t.Fatalf("missLatency = %v", tr.missLatency)
	}
}

func TestTrackerSetScope(t *testing.T) {
	// 100k block entries (16B) = 391 pages; 10k adjacency entries (48B,
	// 85/page) = 118 pages. Full scope at 10% => 50 pages; network-only
	// scope => 11 pages.
	tr := NewTracker([]int{100000}, []int{10000}, 0.1, 0)
	if got := tr.Pool().Capacity(); got != 50 {
		t.Fatalf("full-scope capacity = %d", got)
	}
	tr.TouchBlock(0, 0, nil)
	tr.SetScope(true)
	if got := tr.Pool().Capacity(); got != 11 {
		t.Fatalf("network-scope capacity = %d", got)
	}
	if s := tr.Stats(); s.Accesses() != 0 {
		t.Fatalf("SetScope must start cold: %+v", s)
	}
	tr.SetScope(false)
	if got := tr.Pool().Capacity(); got != 50 {
		t.Fatalf("restored capacity = %d", got)
	}
	// Nil tracker: no-ops.
	var nilTracker *Tracker
	nilTracker.SetScope(true)
	nilTracker.ClearCache()
	if nilTracker.MissLatency() != DefaultMissLatency {
		t.Fatal("nil tracker MissLatency")
	}
}

func TestPoolShardingAndCapacity(t *testing.T) {
	p := NewPool(100, 8)
	if p.NumShards() != 8 {
		t.Fatalf("NumShards = %d", p.NumShards())
	}
	if p.Capacity() != 100 {
		t.Fatalf("Capacity = %d", p.Capacity())
	}
	// Shard count shrinks until every shard holds at least one page.
	small := NewPool(3, 64)
	if small.NumShards() > 3 {
		t.Fatalf("small pool shards = %d", small.NumShards())
	}
	if small.Capacity() != 3 {
		t.Fatalf("small pool capacity = %d", small.Capacity())
	}
	// Non-power-of-two shard requests round down.
	odd := NewPool(100, 7)
	if n := odd.NumShards(); n != 4 {
		t.Fatalf("odd shard request gave %d shards", n)
	}
}

func TestPoolHitMissAndPerQueryAttribution(t *testing.T) {
	p := NewPool(64, 4)
	var q1, q2 Stats
	p.Touch(1, &q1) // miss
	p.Touch(1, &q1) // hit
	p.Touch(1, &q2) // hit
	p.Touch(2, &q2) // miss
	p.Touch(3, nil) // miss, untracked
	if q1.Hits != 1 || q1.Misses != 1 {
		t.Fatalf("q1 = %+v", q1)
	}
	if q2.Hits != 1 || q2.Misses != 1 {
		t.Fatalf("q2 = %+v", q2)
	}
	agg := p.Stats()
	if agg.Hits != 2 || agg.Misses != 3 {
		t.Fatalf("aggregate = %+v", agg)
	}
	if p.Len() != 3 {
		t.Fatalf("Len = %d", p.Len())
	}
	p.ResetStats()
	if s := p.Stats(); s.Accesses() != 0 {
		t.Fatalf("stats after reset = %+v", s)
	}
	if !p.Touch(1, nil) {
		t.Fatal("page 1 should remain resident across ResetStats")
	}
	p.Clear()
	if p.Len() != 0 || p.Touch(1, nil) {
		t.Fatal("Clear should evict everything")
	}
}

func TestPoolConcurrentTouches(t *testing.T) {
	p := NewPool(256, 16)
	const workers = 8
	const touches = 2000
	counters := make([]Stats, workers)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < touches; i++ {
				p.Touch(PageID((w*touches+i)%500), &counters[w])
			}
		}(w)
	}
	wg.Wait()
	var total int64
	for w := range counters {
		if got := counters[w].Accesses(); got != touches {
			t.Fatalf("worker %d accesses = %d", w, got)
		}
		total += counters[w].Accesses()
	}
	if agg := p.Stats().Accesses(); agg != total {
		t.Fatalf("aggregate %d != per-query sum %d", agg, total)
	}
}

func TestTrackerConcurrentTouches(t *testing.T) {
	tr := NewTracker([]int{100000, 100000}, []int{100, 100}, 0.1, 0)
	var wg sync.WaitGroup
	counters := make([]Stats, 8)
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				tr.TouchBlock(w%2, i%1000, &counters[w])
				tr.TouchAdjacency(w%2, &counters[w])
			}
		}(w)
	}
	wg.Wait()
	var sum int64
	for w := range counters {
		sum += counters[w].Accesses()
	}
	if got := tr.Stats().Accesses(); got != sum {
		t.Fatalf("aggregate %d != per-query sum %d", got, sum)
	}
}
