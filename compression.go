package silc

import "silc/internal/store"

// Compression selects the block-page encoding of paged index images
// (WritePaged / WriteFile / silcbuild -format=paged).
//
// CompressionNone writes the fixed-width 16-byte block entries (formats
// SILCPG1 / SILCSPG1). CompressionDelta encodes each vertex's Morton-block
// run as a delta+varint stream (SILCPG2 / SILCSPG2), typically shrinking
// the image by more than 2x. Both encodings read back identically —
// OpenIndex, OpenShardedIndex, and LoadEngine sniff the format — so the
// knob trades image size against a little per-page decode work without
// ever changing query answers.
type Compression = store.Compression

const (
	// CompressionNone is the fixed-width 16-byte block-entry encoding.
	CompressionNone = store.CompressionNone
	// CompressionDelta is the delta+varint run encoding.
	CompressionDelta = store.CompressionDelta
)

// ParseCompression parses a -compress flag value: "none" or "delta".
func ParseCompression(s string) (Compression, error) { return store.ParseCompression(s) }

// ImageInfo describes the section layout of a paged index image — what
// silcbuild prints as its per-section size table. Ratio() reports the
// whole-image compression ratio against the fixed-width encoding of the
// same index.
type ImageInfo = store.ImageInfo
