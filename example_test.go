package silc_test

import (
	"context"
	"fmt"
	"log"

	"silc"
)

// ExampleEngine_Neighbors demonstrates incremental distance browsing
// through the iterator API: neighbors stream out in increasing network
// distance, each one costing only the incremental search it needs, and
// breaking out of the loop abandons the rest of the work.
func ExampleEngine_Neighbors() {
	net, err := silc.GenerateGrid(6, 6)
	if err != nil {
		log.Fatal(err)
	}
	ix, err := silc.BuildIndex(net, silc.BuildOptions{})
	if err != nil {
		log.Fatal(err)
	}
	// Three shops on the lattice; browse from the top-left corner.
	objs, err := silc.NewObjectSet(net, []silc.VertexID{7, 14, 35})
	if err != nil {
		log.Fatal(err)
	}

	eng := ix.Engine()
	shown := 0
	for n, err := range eng.Neighbors(context.Background(), objs, 0) {
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("rank %d: object %d at vertex %d, distance %.2f\n",
			shown+1, n.ID, n.Vertex, n.Dist)
		if shown++; shown == 2 {
			break // the third-nearest shop is never computed
		}
	}
	// Output:
	// rank 1: object 0 at vertex 7, distance 0.29
	// rank 2: object 1 at vertex 14, distance 0.57
}
