package silc

import (
	"context"
	"io"
	"time"

	"silc/internal/core"
	"silc/internal/store"
)

// BuildOptions configures BuildIndex.
type BuildOptions struct {
	// Parallelism sets the number of build workers (0 = all CPUs). The
	// build runs one Dijkstra per vertex, parallelized over sources.
	Parallelism int
	// DiskResident attaches the paged-storage model: queries then report
	// buffer-pool traffic and modeled I/O time, reproducing the paper's
	// disk-resident evaluation setting.
	DiskResident bool
	// CacheFraction sizes the LRU buffer pool as a fraction of total pages
	// (default 0.05, the paper's setting). Used only when DiskResident.
	CacheFraction float64
	// MissLatency is the modeled cost of one page miss. The default is
	// diskio.DefaultMissLatency, 200µs — a buffered 4KiB read, which
	// reproduces the paper's magnitudes; raise it toward 5ms to model a
	// cold spinning disk. Used only when DiskResident.
	MissLatency time.Duration
	// ProximityRadius, when positive, bounds each vertex's quadtree to the
	// vertices within that network distance — the paper's location-based-
	// services approximation. It cuts build time and storage sharply for
	// local-search workloads; queries beyond the radius report Distance
	// +Inf, ShortestPath nil, and the interval [radius, +Inf), and
	// NearestNeighbors returns only in-range neighbors (possibly fewer
	// than k).
	ProximityRadius float64
	// OnDisk, when set, persists the built index to this path in the
	// page-aligned on-disk format and returns a genuinely disk-resident
	// index reading through the buffer pool: the in-RAM quadtrees are
	// released, pool misses become actual page reads, and resident memory
	// tracks CacheFraction rather than the index size. Close the returned
	// Index to release the file. (DiskResident, by contrast, only models
	// paging over a fully in-RAM index.)
	OnDisk string
	// Compression selects the paged image encoding WritePaged, WriteFile,
	// and OnDisk emit — CompressionNone (fixed-width, the default) or
	// CompressionDelta (delta+varint runs, typically over 2x smaller).
	// Opening sniffs the format, so this knob never affects reads.
	Compression Compression
	// Mmap makes OpenIndex (and OnDisk's reopen) access the paged file
	// through a read-only memory mapping instead of positioned reads: warm
	// pages decode straight from the mapping with no syscall and no gather
	// copy. Falls back to positioned reads on platforms without mmap.
	Mmap bool
}

// BuildStats summarizes a completed index build.
type BuildStats = core.BuildStats

// Interval is a closed network-distance interval guaranteed to contain the
// exact network distance.
type Interval = core.Interval

// Index is a SILC index over one network: per-vertex shortest-path quadtrees
// supporting interval-based distance queries, progressive refinement, exact
// distances, and path retrieval. Every Index — including DiskResident ones —
// is safe for unlimited concurrent readers: the buffer pool is sharded and
// per-query statistics live in query-owned contexts, never on the Index.
//
// Queries run through the unified Engine handle (Index.Engine); the methods
// on Index itself are thin deprecated shims kept for pre-Engine callers.
type Index struct {
	net    *Network
	ix     *core.Index
	eng    *Engine
	closer io.Closer // file behind a disk-backed index; nil when in-RAM
}

// newIndex wires a built core index to its unified query engine.
func newIndex(net *Network, cx *core.Index) *Index {
	ix := &Index{net: net, ix: cx}
	ix.eng = newEngine(net, cx)
	ix.eng.mono = ix
	return ix
}

// pagedIndexFrom wraps an opened paged store as a public Index. closer is
// released by Index.Close (nil when the caller owns the reader).
func pagedIndexFrom(st *store.Store, closer io.Closer) *Index {
	g := st.Graph()
	total, minBlocks, maxBlocks := st.BlockStats()
	cx := core.NewPagedIndex(core.PagedConfig{
		Graph:       g,
		Source:      st,
		Tracker:     st.Tracker(),
		Radius:      st.Radius(),
		Lenient:     st.Lenient(),
		Compression: st.Compression(),
		Stats: core.BuildStats{
			Vertices:    g.NumVertices(),
			Edges:       g.NumEdges(),
			TotalBlocks: total,
			TotalBytes:  total * 16,
			MinBlocks:   minBlocks,
			MaxBlocks:   maxBlocks,
		},
	})
	ix := newIndex(&Network{g: g}, cx)
	ix.closer = closer
	ix.eng.pager = st.Pager()
	return ix
}

// OpenIndex opens a paged index file (written by Index.WriteFile or
// silcbuild -format=paged). The file embeds the network, so no separate
// network file is needed; the quadtrees stay on disk and queries
// materialize them page by page through an LRU buffer pool sized by
// opts.CacheFraction (default 5% of the database pages). Resident memory
// therefore tracks the pool capacity, not the index size. Close the
// returned Index to release the file.
func OpenIndex(path string, opts BuildOptions) (*Index, error) {
	sopts := store.OpenOptions{
		CacheFraction: opts.CacheFraction,
		MissLatency:   opts.MissLatency,
	}
	open := store.OpenFile
	if opts.Mmap {
		open = store.OpenMapped
	}
	st, err := open(path, sopts)
	if err != nil {
		return nil, err
	}
	return pagedIndexFrom(st, st), nil
}

// OpenIndexAt is OpenIndex over an arbitrary ReaderAt (a section of a
// larger file, an in-memory image). The caller owns ra's lifetime.
func OpenIndexAt(ra io.ReaderAt, size int64, opts BuildOptions) (*Index, error) {
	st, err := store.Open(ra, size, store.OpenOptions{
		CacheFraction: opts.CacheFraction,
		MissLatency:   opts.MissLatency,
	})
	if err != nil {
		return nil, err
	}
	return pagedIndexFrom(st, nil), nil
}

// Close releases the file behind a disk-backed index; it is a no-op for
// in-RAM indexes. Queries must not run concurrently with or after Close.
func (ix *Index) Close() error {
	if ix.closer != nil {
		return ix.closer.Close()
	}
	return nil
}

// Engine returns the unified context-aware query handle over this index —
// the primary query surface of the package.
func (ix *Index) Engine() *Engine { return ix.eng }

// BuildIndex precomputes the SILC index for net. The network must be
// strongly connected (use the generators, or validate custom networks).
func BuildIndex(net *Network, opts BuildOptions) (*Index, error) {
	if net == nil {
		return nil, ErrNilNetwork
	}
	ix, err := core.Build(net.g, core.BuildOptions{
		Parallelism:     opts.Parallelism,
		DiskResident:    opts.DiskResident && opts.OnDisk == "",
		CacheFraction:   opts.CacheFraction,
		MissLatency:     opts.MissLatency,
		ProximityRadius: opts.ProximityRadius,
		Compression:     opts.Compression,
	})
	if err != nil {
		return nil, err
	}
	if opts.OnDisk != "" {
		// Persist to the paged format and reopen disk-resident: the in-RAM
		// trees are dropped with the build-time index.
		if err := ix.WriteFile(opts.OnDisk); err != nil {
			return nil, err
		}
		return OpenIndex(opts.OnDisk, opts)
	}
	return newIndex(net, ix), nil
}

// Radius returns the proximity bound the index was built with (0 when
// unbounded).
func (ix *Index) Radius() float64 { return ix.ix.Radius() }

// WriteTo serializes the index in the binary index format (16 bytes per
// Morton block plus a CRC-32 trailer), so the one-time precomputation can be
// reused across processes. The network is serialized separately with
// Network.Write; LoadIndex rebinds the two.
func (ix *Index) WriteTo(w io.Writer) (int64, error) { return ix.ix.WriteTo(w) }

// WritePaged serializes the index in the page-aligned on-disk format
// (conventionally *.silcpg): network embedded, quadtree blocks packed onto
// checksummed pages that OpenIndex reads back on demand. This is the format
// to use when the index should not have to fit in memory.
func (ix *Index) WritePaged(w io.Writer) (int64, error) { return ix.ix.WritePaged(w) }

// WriteFile writes the paged on-disk format to path (fsynced).
func (ix *Index) WriteFile(path string) error { return ix.ix.WriteFile(path) }

// PagedImageInfo reports the section layout and compression ratio of the
// paged image WritePaged would produce, without writing it. Under
// CompressionDelta this encodes every block run, so it costs about as much
// as the write itself.
func (ix *Index) PagedImageInfo() (ImageInfo, error) {
	p, err := ix.ix.PlanPaged()
	if err != nil {
		return ImageInfo{}, err
	}
	return p.Info(), nil
}

// LoadIndex deserializes an index produced by WriteTo and binds it to net,
// which must be the network it was built from (structural mismatches and
// corruption are rejected).
func LoadIndex(r io.Reader, net *Network, opts BuildOptions) (*Index, error) {
	if net == nil {
		return nil, ErrNilNetwork
	}
	ix, err := core.Load(r, net.g, core.BuildOptions{
		Parallelism:   opts.Parallelism,
		DiskResident:  opts.DiskResident,
		CacheFraction: opts.CacheFraction,
		MissLatency:   opts.MissLatency,
		Compression:   opts.Compression,
	})
	if err != nil {
		return nil, err
	}
	return newIndex(net, ix), nil
}

// Network returns the indexed network.
func (ix *Index) Network() *Network { return ix.net }

// Stats returns build statistics (vertices, Morton blocks, bytes, times).
func (ix *Index) Stats() BuildStats { return ix.ix.Stats() }

// Distance returns the exact network distance from u to v by full
// progressive refinement (at most path-length block lookups).
//
// Deprecated: use Engine.Distance for cancellation and error returns.
func (ix *Index) Distance(u, v VertexID) float64 { return legacyDistance(ix.eng, u, v) }

// DistanceInterval returns the zero-refinement network-distance interval
// between u and v: a single quadtree lookup, no graph access.
//
// Deprecated: use Engine.DistanceInterval.
func (ix *Index) DistanceInterval(u, v VertexID) Interval { return legacyInterval(ix.eng, u, v) }

// ShortestPath retrieves the exact shortest path from u to v, inclusive of
// both endpoints, one quadtree lookup per hop.
//
// Deprecated: use Engine.ShortestPath for cancellation and error returns.
func (ix *Index) ShortestPath(u, v VertexID) []VertexID { return legacyPath(ix.eng, u, v) }

// NextHop returns the first vertex after u on the shortest path toward v.
func (ix *Index) NextHop(u, v VertexID) VertexID { return ix.ix.NextHop(u, v) }

// IsCloser reports whether u is strictly closer to a than to b by network
// distance, refining both intervals only as far as the comparison requires —
// the paper's "is Munich closer to Mainz than to Bremen?" primitive.
// On a proximity-bounded index two out-of-range destinations compare as
// not-closer (both are beyond the radius).
//
// Deprecated: use Engine.IsCloser for cancellation and error returns.
func (ix *Index) IsCloser(u, a, b VertexID) bool { return legacyIsCloser(ix.eng, u, a, b) }

// The legacy* adapters back the deprecated pre-Engine methods of Index and
// ShardedIndex: same generic code path as the Engine API, with invalid
// vertices panicking at this edge (the old surface had no error returns).

func legacyDistance(e *Engine, u, v VertexID) float64 {
	d, err := e.Distance(context.Background(), u, v)
	if err != nil {
		panic(err)
	}
	return d
}

func legacyInterval(e *Engine, u, v VertexID) Interval {
	iv, err := e.DistanceInterval(context.Background(), u, v)
	if err != nil {
		panic(err)
	}
	return iv
}

func legacyPath(e *Engine, u, v VertexID) []VertexID {
	p, err := e.ShortestPath(context.Background(), u, v)
	if err != nil {
		panic(err)
	}
	return p
}

func legacyIsCloser(e *Engine, u, a, b VertexID) bool {
	c, err := e.IsCloser(context.Background(), u, a, b)
	if err != nil {
		panic(err)
	}
	return c
}

// Refiner exposes progressive refinement directly: each Step tightens the
// distance interval by one hop of the underlying shortest path.
type Refiner struct {
	r *core.Refiner
}

// NewRefiner starts progressive refinement for the pair (src, dst).
func (ix *Index) NewRefiner(src, dst VertexID) *Refiner {
	return &Refiner{r: ix.ix.NewRefiner(src, dst)}
}

// Interval returns the current distance interval.
func (r *Refiner) Interval() Interval { return r.r.Interval() }

// Step refines once; it returns false when the interval is exact or the
// destination is out of a proximity-bounded index's range.
func (r *Refiner) Step() bool { return r.r.Step() }

// Done reports whether the interval is exact.
func (r *Refiner) Done() bool { return r.r.Done() }

// Steps returns the number of refinements performed.
func (r *Refiner) Steps() int { return r.r.Steps() }

// Via returns the last committed intermediate vertex and the exact distance
// from the source to it.
func (r *Refiner) Via() (VertexID, float64) { return r.r.Via() }

// OutOfRange reports whether the destination lies beyond a
// proximity-bounded index's radius; the interval is then [radius, +Inf) and
// cannot improve.
func (r *Refiner) OutOfRange() bool { return r.r.OutOfRange() }

// IOStats reports buffer-pool traffic accumulated by a DiskResident index
// (zeros otherwise).
type IOStats struct {
	PageHits   int64
	PageMisses int64
	// ModeledIOTime is PageMisses times the configured miss latency.
	ModeledIOTime time.Duration
	// PageReads counts the actual disk reads of a paged (OpenIndex /
	// OnDisk) store — zero for modeled DiskResident indexes, where misses
	// are counted but nothing is read.
	PageReads int64
	// MeasuredIOTime is the wall-clock time spent in those reads, reported
	// next to the modeled figure.
	MeasuredIOTime time.Duration
}

// IOStats returns cumulative pool-wide buffer-pool statistics, summed over
// all queries since the last reset. Per-query traffic is reported on each
// Result's QueryStats.
func (ix *Index) IOStats() IOStats { return ix.eng.IOStats() }

// ResetIOStats zeroes the buffer-pool counters — and, on a disk-backed
// index, the store's actual read counters with them, exactly like
// Engine.ResetIOStats (the two were previously inconsistent: this shim
// left the measured read figures running). Cache contents stay warm.
func (ix *Index) ResetIOStats() { ix.eng.ResetIOStats() }
