package silc

import (
	"context"
	"io"
	"net/http"
	"os"
	"time"

	"silc/internal/cluster"
	"silc/internal/obs"
	"silc/internal/partition"
)

// ClusterManifest is the static cluster topology — which node serves which
// cells, and where the shared sharded paged index file lives. See
// cluster.Manifest for the JSON format.
type ClusterManifest = cluster.Manifest

// ClusterNodeSpec is one node's manifest entry: name, base URL, owned cells.
type ClusterNodeSpec = cluster.NodeSpec

// LoadClusterManifest reads and validates a manifest file (structural
// checks only; cell coverage is validated against the index when a node or
// router opens it).
func LoadClusterManifest(path string) (*ClusterManifest, error) {
	return cluster.LoadManifest(path)
}

// ClusterNode is one serving node of a distributed deployment: it owns the
// manifest-assigned cells of a sharded index and answers the internal RPC
// surface the router fans out to. The node opens the full paged file, but
// demand paging means only its own cells' pages ever materialize.
type ClusterNode struct {
	ix   *ShardedIndex
	node *cluster.Node
}

// NewClusterNode binds the node named name in the manifest to an opened
// sharded index (typically OpenShardedIndex over the manifest's index
// file).
func NewClusterNode(ix *ShardedIndex, m *ClusterManifest, name string) (*ClusterNode, error) {
	n, err := cluster.NewNode(name, m, ix.sx)
	if err != nil {
		return nil, err
	}
	return &ClusterNode{ix: ix, node: n}, nil
}

// Name returns the node's manifest name.
func (n *ClusterNode) Name() string { return n.node.Name() }

// Handler returns the node's HTTP surface: the /rpc/v1/* endpoints plus
// /healthz, /readyz and /metrics.
func (n *ClusterNode) Handler() http.Handler { return n.node.Handler() }

// StartDrain flips /readyz to 503 so routers and load balancers stop
// sending new work; in-flight RPCs keep being served.
func (n *ClusterNode) StartDrain() { n.node.StartDrain() }

// WriteMetrics writes the Prometheus exposition: the index's silc_*
// families (buffer pool, stores) followed by the node's silcnode_* RPC
// metrics.
func (n *ClusterNode) WriteMetrics(w io.Writer) error {
	if err := n.ix.Engine().WriteMetrics(w); err != nil {
		return err
	}
	return n.node.Registry().WritePrometheus(w)
}

// Close releases the index file.
func (n *ClusterNode) Close() error { return n.ix.Close() }

// ClusterRouterOptions tunes the router's RPC client.
type ClusterRouterOptions struct {
	// Timeout bounds each RPC attempt (default 5s).
	Timeout time.Duration
	// HedgeDelay launches a hedged attempt on another replica when the
	// first is slow; 0 disables hedging.
	HedgeDelay time.Duration
	// FailCooldown deprioritizes a failed replica for this long (default 2s).
	FailCooldown time.Duration
	// HTTPClient overrides the transport (tests inject httptest clients).
	HTTPClient *http.Client
}

// ClusterRouter is the stateless query half of a distributed deployment:
// it holds only the index's metadata — the global network, the cell
// labels, and the boundary closure (the routing table) — and fans each
// query's per-cell work out to the owning nodes, merging the replies with
// exactly the in-process engine's arithmetic. Distances cross the wire as
// IEEE 754 bits, so every answer is bit-identical to the monolithic
// engine's. The router's Engine answers the full query surface (kNN,
// range, browse, distance, path) and is safe for unlimited concurrent use.
type ClusterRouter struct {
	ix     *ShardedIndex
	client *cluster.Client
}

// OpenClusterRouter reads the metadata half of the sharded paged index at
// indexPath — no cell image pages are touched, ever — and wires a router
// over the manifest's nodes.
func OpenClusterRouter(indexPath string, m *ClusterManifest, opt ClusterRouterOptions) (*ClusterRouter, error) {
	f, err := os.Open(indexPath)
	if err != nil {
		return nil, err
	}
	defer f.Close() // the metadata is fully decoded; the file is not needed after
	info, err := f.Stat()
	if err != nil {
		return nil, err
	}
	meta, err := partition.OpenPagedMeta(f, info.Size())
	if err != nil {
		return nil, err
	}
	client, err := cluster.NewClient(m, meta.NumPartitions(), cluster.ClientOptions{
		Timeout:      opt.Timeout,
		HedgeDelay:   opt.HedgeDelay,
		FailCooldown: opt.FailCooldown,
		HTTPClient:   opt.HTTPClient,
	})
	if err != nil {
		return nil, err
	}
	sx, err := partition.NewRemote(meta, cluster.RemoteCells(client, meta))
	if err != nil {
		return nil, err
	}
	return &ClusterRouter{
		ix:     newShardedIndex(&Network{g: meta.Network()}, sx),
		client: client,
	}, nil
}

// Engine returns the router's unified query handle — the same API an
// in-process index serves, now backed by the cluster.
func (r *ClusterRouter) Engine() *Engine { return r.ix.Engine() }

// Ready verifies every manifest node answers /readyz, so the router can
// gate its own readiness on the cluster being dialable.
func (r *ClusterRouter) Ready(ctx context.Context) error { return r.client.Ready(ctx) }

// StartProbing re-admits failed replicas in the background: every interval,
// nodes marked down are probed on /readyz and restored on 200. Runs until
// ctx is cancelled.
func (r *ClusterRouter) StartProbing(ctx context.Context, interval time.Duration) {
	r.client.StartProbing(ctx, interval)
}

// ClusterCellLoad is one cell's cumulative router-side RPC count.
type ClusterCellLoad = cluster.CellLoad

// HotCells returns the k most-called cells in descending call order — the
// replica-placement signal behind the silc_cluster_cell_rpcs_total metric.
func (r *ClusterRouter) HotCells(k int) []ClusterCellLoad { return r.client.HotCells(k) }

// WriteMetrics writes the Prometheus exposition: the engine's silc_*
// families followed by the RPC client's silc_cluster_* metrics.
func (r *ClusterRouter) WriteMetrics(w io.Writer) error {
	if err := r.ix.Engine().WriteMetrics(w); err != nil {
		return err
	}
	return r.client.Registry().WritePrometheus(w)
}

// Registry exposes the RPC client's silc_cluster_* metrics on their own, for
// servers that already emit the engine families elsewhere.
func (r *ClusterRouter) Registry() *obs.Registry { return r.client.Registry() }
