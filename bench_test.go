// Package-level benchmarks: one benchmark family per table and figure of
// the paper's evaluation (DESIGN.md §4 maps each to its experiment id).
// `go test -bench=. -benchmem` regenerates every measurement; the custom
// metrics reported via b.ReportMetric carry the figure's quantity (block
// counts, queue sizes, refinement counts, modeled I/O) alongside wall time.
//
// cmd/experiments renders the same data as the paper's tables; these
// benchmarks make the measurements reproducible under the standard Go
// tooling.
package silc

import (
	"fmt"
	"math/rand"
	"sync"
	"sync/atomic"
	"testing"

	"silc/internal/bench"
	"silc/internal/core"
	"silc/internal/graph"
	"silc/internal/knn"
	"silc/internal/oracle"
	"silc/internal/sssp"
)

// benchEnv is the shared evaluation environment (built once). Benchmarks use
// a mid-size lattice so `go test -bench=.` stays in CI budgets; cmd/
// experiments runs the full-size evaluation.
var (
	envOnce sync.Once
	env     *bench.Env
	envErr  error
)

func sharedEnv(b *testing.B) *bench.Env {
	envOnce.Do(func() {
		env, envErr = bench.NewEnv(64, 64, bench.DefaultSeed, true)
	})
	if envErr != nil {
		b.Fatal(envErr)
	}
	return env
}

// BenchmarkT1StorageModels measures the space/query-time trade-off table
// (paper p.11): distance queries against each storage model.
func BenchmarkT1StorageModels(b *testing.B) {
	g, err := graph.GenerateRoadNetwork(graph.RoadNetworkOptions{Rows: 24, Cols: 24, Seed: 3})
	if err != nil {
		b.Fatal(err)
	}
	n := g.NumVertices()
	rng := rand.New(rand.NewSource(1))
	pairs := make([][2]graph.VertexID, 256)
	for i := range pairs {
		pairs[i] = [2]graph.VertexID{
			graph.VertexID(rng.Intn(n)), graph.VertexID(rng.Intn(n)),
		}
	}

	ix, err := core.Build(g, core.BuildOptions{})
	if err != nil {
		b.Fatal(err)
	}
	nh, err := oracle.BuildNextHop(g)
	if err != nil {
		b.Fatal(err)
	}
	exp, err := oracle.BuildExplicitPaths(g)
	if err != nil {
		b.Fatal(err)
	}
	or, err := oracle.BuildDistanceOracle(ix, 0.25)
	if err != nil {
		b.Fatal(err)
	}

	b.Run("Dijkstra", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			p := pairs[i%len(pairs)]
			sssp.ShortestPath(g, p[0], p[1])
		}
	})
	b.Run("ExplicitPaths", func(b *testing.B) {
		b.ReportAllocs()
		b.ReportMetric(float64(exp.SizeBytes()), "storage-bytes")
		for i := 0; i < b.N; i++ {
			p := pairs[i%len(pairs)]
			exp.Distance(p[0], p[1])
		}
	})
	b.Run("NextHop", func(b *testing.B) {
		b.ReportAllocs()
		b.ReportMetric(float64(nh.SizeBytes()), "storage-bytes")
		for i := 0; i < b.N; i++ {
			p := pairs[i%len(pairs)]
			nh.Distance(p[0], p[1])
		}
	})
	b.Run("SILC", func(b *testing.B) {
		b.ReportAllocs()
		b.ReportMetric(float64(ix.Stats().TotalBytes), "storage-bytes")
		for i := 0; i < b.N; i++ {
			p := pairs[i%len(pairs)]
			ix.Distance(p[0], p[1])
		}
	})
	b.Run("DistanceOracle", func(b *testing.B) {
		b.ReportAllocs()
		b.ReportMetric(float64(or.SizeBytes()), "storage-bytes")
		for i := 0; i < b.N; i++ {
			p := pairs[i%len(pairs)]
			or.Distance(p[0], p[1])
		}
	})
}

// BenchmarkF1StorageGrowth measures SILC build cost and block counts as the
// network grows (paper p.16; block counts follow n^1.5).
func BenchmarkF1StorageGrowth(b *testing.B) {
	for _, rc := range []int{16, 24, 32, 48} {
		b.Run(fmt.Sprintf("lattice=%dx%d", rc, rc), func(b *testing.B) {
			var blocks int64
			var vertices int
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				g, err := graph.GenerateRoadNetwork(graph.RoadNetworkOptions{Rows: rc, Cols: rc, Seed: 5})
				if err != nil {
					b.Fatal(err)
				}
				ix, err := core.Build(g, core.BuildOptions{})
				if err != nil {
					b.Fatal(err)
				}
				blocks = ix.Stats().TotalBlocks
				vertices = g.NumVertices()
			}
			b.ReportMetric(float64(blocks), "morton-blocks")
			b.ReportMetric(float64(blocks)/float64(vertices), "blocks/vertex")
		})
	}
}

// BenchmarkF2DijkstraVsSILCPath compares point-to-point path retrieval:
// Dijkstra and A* settle large fractions of the network, SILC touches only
// path vertices (paper pp.3/7).
func BenchmarkF2DijkstraVsSILCPath(b *testing.B) {
	e := sharedEnv(b)
	rng := rand.New(rand.NewSource(9))
	n := e.G.NumVertices()
	pairs := make([][2]graph.VertexID, 128)
	for i := range pairs {
		pairs[i] = [2]graph.VertexID{
			graph.VertexID(rng.Intn(n)), graph.VertexID(rng.Intn(n)),
		}
	}
	b.Run("Dijkstra", func(b *testing.B) {
		b.ReportAllocs()
		settled := 0
		for i := 0; i < b.N; i++ {
			p := pairs[i%len(pairs)]
			settled = sssp.ShortestPath(e.G, p[0], p[1]).Settled
		}
		b.ReportMetric(float64(settled), "vertices-settled")
	})
	b.Run("AStar", func(b *testing.B) {
		b.ReportAllocs()
		settled := 0
		for i := 0; i < b.N; i++ {
			p := pairs[i%len(pairs)]
			settled = sssp.AStar(e.G, p[0], p[1]).Settled
		}
		b.ReportMetric(float64(settled), "vertices-settled")
	})
	b.Run("SILC", func(b *testing.B) {
		b.ReportAllocs()
		hops := 0
		for i := 0; i < b.N; i++ {
			p := pairs[i%len(pairs)]
			hops = len(e.Ix.Path(p[0], p[1])) - 1
		}
		b.ReportMetric(float64(hops), "vertices-settled")
	})
}

// benchWorkload is one pre-seeded (object set, query vertex) pair.
type benchWorkload struct {
	objs *knn.Objects
	q    graph.VertexID
}

// benchWorkloads pre-generates n deterministic workloads so fixture
// construction never runs inside a timed loop.
func benchWorkloads(e *bench.Env, rng *rand.Rand, fraction float64, n int) []benchWorkload {
	ws := make([]benchWorkload, n)
	for i := range ws {
		ws[i] = benchWorkload{objs: e.ObjectSet(fraction, rng), q: e.Query(rng)}
	}
	return ws
}

// sweepBench runs one (fraction, k) evaluation point for one algorithm,
// reporting the figure metrics. Workloads are regenerated per iteration
// exactly as in the paper's methodology.
func sweepBench(b *testing.B, algo bench.Algorithm, fraction float64, k int) {
	e := sharedEnv(b)
	rng := rand.New(rand.NewSource(77))
	queries := benchWorkloads(e, rng, fraction, 32)
	e.Ix.Tracker().SetScope(algo.Baseline)
	var agg struct {
		refinements, maxQueue, ioMisses float64
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		w := queries[i%len(queries)]
		res := algo.Run(e.Ix, w.objs, w.q, k)
		agg.refinements += float64(res.Stats.Refinements)
		agg.maxQueue += float64(res.Stats.MaxQueue)
		agg.ioMisses += float64(res.Stats.IO.Misses)
	}
	n := float64(b.N)
	b.ReportMetric(agg.refinements/n, "refinements/query")
	b.ReportMetric(agg.maxQueue/n, "max-queue")
	b.ReportMetric(agg.ioMisses/n, "page-misses/query")
}

// BenchmarkF3ExecTimeVaryS is the paper's p.33 left panel: k=10, |S|/N in
// {0.001, 0.01, 0.05, 0.2}, all six algorithms. The same runs provide the
// queue-size (F4), refinement (F5), and I/O (F8) series via the reported
// metrics.
func BenchmarkF3ExecTimeVaryS(b *testing.B) {
	for _, f := range []float64{0.001, 0.01, 0.05, 0.2} {
		for _, algo := range bench.Algorithms() {
			algo := algo
			b.Run(fmt.Sprintf("S=%gN/%s", f, algo.Name), func(b *testing.B) {
				sweepBench(b, algo, f, 10)
			})
		}
	}
}

// BenchmarkF3ExecTimeVaryK is the paper's p.33 right panel: |S| = 0.07N,
// k in {5, 10, 50, 100, 300}.
func BenchmarkF3ExecTimeVaryK(b *testing.B) {
	for _, k := range []int{5, 10, 50, 100, 300} {
		for _, algo := range bench.Algorithms() {
			algo := algo
			b.Run(fmt.Sprintf("k=%d/%s", k, algo.Name), func(b *testing.B) {
				sweepBench(b, algo, 0.07, k)
			})
		}
	}
}

// BenchmarkF4QueueSize isolates the queue-size comparison of fig. p.34 at
// the paper's headline point (k=10, |S|=0.07N): the kNN family's Dk pruning
// versus INN.
func BenchmarkF4QueueSize(b *testing.B) {
	for _, algo := range bench.SILCVariants() {
		algo := algo
		b.Run(algo.Name, func(b *testing.B) { sweepBench(b, algo, 0.07, 10) })
	}
}

// BenchmarkF5Refinements isolates the refinement comparison of fig. p.35:
// kNN-M's KMINDIST shortcut saves the ordering refinements.
func BenchmarkF5Refinements(b *testing.B) {
	for _, algo := range bench.SILCVariants() {
		algo := algo
		b.Run(algo.Name, func(b *testing.B) { sweepBench(b, algo, 0.05, 10) })
	}
}

// BenchmarkF6KMinDistPruning measures the share of kNN-M results accepted
// directly against KMINDIST (fig. p.36).
func BenchmarkF6KMinDistPruning(b *testing.B) {
	e := sharedEnv(b)
	rng := rand.New(rand.NewSource(3))
	e.Ix.Tracker().SetScope(false)
	// Deterministic pre-seeded workloads: object-set generation happens
	// outside the timed loop so the measurement covers the query alone.
	workloads := benchWorkloads(e, rng, 0.07, 32)
	accepts, total := 0.0, 0.0
	k := 10
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		w := workloads[i%len(workloads)]
		res := knn.Search(e.Ix, w.objs, w.q, k, knn.VariantKNNM)
		accepts += float64(res.Stats.KMinDistAccepts)
		total += float64(len(res.Neighbors))
	}
	if total > 0 {
		b.ReportMetric(100*accepts/total, "kmindist-accept-%")
	}
}

// BenchmarkF7EstimateQuality measures D0k and KMINDIST relative to the true
// Dk (fig. p.37).
func BenchmarkF7EstimateQuality(b *testing.B) {
	e := sharedEnv(b)
	rng := rand.New(rand.NewSource(4))
	e.Ix.Tracker().SetScope(false)
	workloads := benchWorkloads(e, rng, 0.07, 32)
	var d0kRatio, kminRatio, count float64
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		w := workloads[i%len(workloads)]
		res := knn.Search(e.Ix, w.objs, w.q, 10, knn.VariantKNN)
		s := res.Stats
		if s.D0k > 0 && s.DkFinal > 0 {
			d0kRatio += s.D0k / s.DkFinal
			kminRatio += s.KMinDist0 / s.DkFinal
			count++
		}
	}
	if count > 0 {
		b.ReportMetric(100*d0kRatio/count, "D0k/Dk-%")
		b.ReportMetric(100*kminRatio/count, "KMINDIST/Dk-%")
	}
}

// BenchmarkF8IOTime measures the modeled I/O of the SILC family on the
// paged store with the 5% LRU pool (fig. p.38).
func BenchmarkF8IOTime(b *testing.B) {
	for _, algo := range bench.SILCVariants() {
		algo := algo
		b.Run(algo.Name, func(b *testing.B) {
			e := sharedEnv(b)
			rng := rand.New(rand.NewSource(5))
			e.Ix.Tracker().SetScope(false)
			workloads := benchWorkloads(e, rng, 0.07, 32)
			var ioNanos float64
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				w := workloads[i%len(workloads)]
				res := algo.Run(e.Ix, w.objs, w.q, 10)
				ioNanos += float64(res.Stats.IOTime.Nanoseconds())
			}
			b.ReportMetric(ioNanos/float64(b.N)/1e6, "modeled-io-ms/query")
		})
	}
}

// BenchmarkIndexBuild measures the one-time precomputation cost.
func BenchmarkIndexBuild(b *testing.B) {
	g, err := graph.GenerateRoadNetwork(graph.RoadNetworkOptions{Rows: 32, Cols: 32, Seed: 6})
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := core.Build(g, core.BuildOptions{}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkAblationIERAStar quantifies how much of IER's cost is the
// unguided per-candidate Dijkstra by swapping in A* (ablation; the paper
// uses Dijkstra).
func BenchmarkAblationIERAStar(b *testing.B) {
	for _, algo := range []bench.Algorithm{
		{Name: "IER-Dijkstra", Baseline: true, Run: knn.IER},
		bench.IERAStarAlgorithm(),
	} {
		algo := algo
		b.Run(algo.Name, func(b *testing.B) { sweepBench(b, algo, 0.05, 10) })
	}
}

// BenchmarkAblationCacheSize sweeps the LRU pool fraction, showing the I/O
// sensitivity the paper's 5% setting sits on.
func BenchmarkAblationCacheSize(b *testing.B) {
	for _, fraction := range []float64{0.01, 0.05, 0.25, 1.0} {
		b.Run(fmt.Sprintf("cache=%g", fraction), func(b *testing.B) {
			g, err := graph.GenerateRoadNetwork(graph.RoadNetworkOptions{
				Rows: 48, Cols: 48, Seed: 8, WeightNoise: 0.1,
			})
			if err != nil {
				b.Fatal(err)
			}
			ix, err := core.Build(g, core.BuildOptions{DiskResident: true, CacheFraction: fraction})
			if err != nil {
				b.Fatal(err)
			}
			rng := rand.New(rand.NewSource(10))
			n := g.NumVertices()
			perm := rng.Perm(n)
			vs := make([]graph.VertexID, n/20)
			for i := range vs {
				vs[i] = graph.VertexID(perm[i])
			}
			objs := knn.NewObjects(g, vs)
			queries := make([]graph.VertexID, 64)
			for i := range queries {
				queries[i] = graph.VertexID(rng.Intn(n))
			}
			var misses float64
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				res := knn.Search(ix, objs, queries[i%len(queries)], 10, knn.VariantKNN)
				misses += float64(res.Stats.IO.Misses)
			}
			b.ReportMetric(misses/float64(b.N), "page-misses/query")
		})
	}
}

// BenchmarkBrowser measures incremental browsing cost per additional
// neighbor (the library's headline cursor API).
func BenchmarkBrowser(b *testing.B) {
	e := sharedEnv(b)
	rng := rand.New(rand.NewSource(11))
	objs := e.ObjectSet(0.05, rng)
	queries := make([]graph.VertexID, 256)
	for i := range queries {
		queries[i] = e.Query(rng)
	}
	e.Ix.Tracker().SetScope(false)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		browser := knn.NewBrowser(e.Ix, objs, queries[i%len(queries)])
		for j := 0; j < 10; j++ {
			if _, ok := browser.Next(); !ok {
				break
			}
		}
	}
}

// BenchmarkTPParallelThroughput measures concurrent kNN throughput over one
// shared disk-resident index (experiment TP). Sweep goroutine counts with
// `go test -bench=TP -cpu 1,2,4,8`: ns/op at each -cpu value is the
// inverse of that goroutine count's QPS.
func BenchmarkTPParallelThroughput(b *testing.B) {
	e := sharedEnv(b)
	rng := rand.New(rand.NewSource(99))
	objs := e.ObjectSet(0.05, rng)
	queries := make([]graph.VertexID, 512)
	for i := range queries {
		queries[i] = e.Query(rng)
	}
	e.Ix.Tracker().SetScope(false)
	var next atomic.Int64
	b.ReportAllocs()
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			i := next.Add(1) - 1
			knn.Search(e.Ix, objs, queries[i%int64(len(queries))], 10, knn.VariantKNN)
		}
	})
}

// BenchmarkQueryBatch measures the public batch API end to end: one call
// answering 64 queries over the worker pool.
func BenchmarkQueryBatch(b *testing.B) {
	net := testNetwork(b)
	ix, err := BuildIndex(net, BuildOptions{DiskResident: true})
	if err != nil {
		b.Fatal(err)
	}
	rng := rand.New(rand.NewSource(42))
	perm := rng.Perm(net.NumVertices())
	vertices := make([]VertexID, 50)
	for i := range vertices {
		vertices[i] = VertexID(perm[i])
	}
	objs := mustObjects(b, net, vertices)
	queries := make([]VertexID, 64)
	for i := range queries {
		queries[i] = VertexID(rng.Intn(net.NumVertices()))
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ix.QueryBatch(objs, queries, 10, MethodKNN)
	}
}
