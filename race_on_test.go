//go:build race

package silc

// raceEnabled reports whether the race detector instruments this build.
// Instrumentation adds its own allocations, so the allocation-budget tests
// skip themselves under -race and run on the plain builds CI also exercises.
const raceEnabled = true
