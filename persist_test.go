package silc

import (
	"bytes"
	"math"
	"math/rand"
	"sync"
	"testing"
)

func TestIndexPersistenceRoundTrip(t *testing.T) {
	net := testNetwork(t)
	ix := testIndex(t, net)

	var netBuf, ixBuf bytes.Buffer
	if err := net.Write(&netBuf); err != nil {
		t.Fatal(err)
	}
	if _, err := ix.WriteTo(&ixBuf); err != nil {
		t.Fatal(err)
	}

	// A different process: reload both and verify query equivalence.
	net2, err := LoadNetwork(&netBuf)
	if err != nil {
		t.Fatal(err)
	}
	ix2, err := LoadIndex(bytes.NewReader(ixBuf.Bytes()), net2, BuildOptions{})
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(6))
	for trial := 0; trial < 60; trial++ {
		u := VertexID(rng.Intn(net.NumVertices()))
		v := VertexID(rng.Intn(net.NumVertices()))
		if a, b := ix.Distance(u, v), ix2.Distance(u, v); math.Abs(a-b) > 1e-12 {
			t.Fatalf("distance differs after reload: %v vs %v", a, b)
		}
	}
	if ix.Stats().TotalBlocks != ix2.Stats().TotalBlocks {
		t.Fatal("block counts differ after reload")
	}
}

func TestLoadIndexRejectsGarbage(t *testing.T) {
	net := testNetwork(t)
	if _, err := LoadIndex(bytes.NewReader([]byte("not an index")), net, BuildOptions{}); err == nil {
		t.Fatal("garbage accepted")
	}
	if _, err := LoadIndex(bytes.NewReader(nil), nil, BuildOptions{}); err == nil {
		t.Fatal("nil network accepted")
	}
}

func TestWithinDistance(t *testing.T) {
	net := testNetwork(t)
	ix := testIndex(t, net)
	rng := rand.New(rand.NewSource(8))
	perm := rng.Perm(net.NumVertices())
	vertices := make([]VertexID, 40)
	for i := range vertices {
		vertices[i] = VertexID(perm[i])
	}
	objs := mustObjects(t, net, vertices)
	q := VertexID(perm[45])

	for _, radius := range []float64{0.1, 0.3, 0.7} {
		res := ix.WithinDistance(objs, q, radius)
		// Cross-validate against exact distances.
		want := 0
		for _, v := range vertices {
			if ix.Distance(q, v) <= radius {
				want++
			}
		}
		if len(res.Neighbors) != want {
			t.Fatalf("radius %v: got %d want %d", radius, len(res.Neighbors), want)
		}
		for _, n := range res.Neighbors {
			if d := ix.Distance(q, n.Vertex); d > radius+1e-9 {
				t.Fatalf("object at %v beyond radius %v", d, radius)
			}
		}
	}
	if res := ix.WithinDistance(objs, q, -1); len(res.Neighbors) != 0 {
		t.Fatal("negative radius returned objects")
	}
}

func TestConcurrentReaders(t *testing.T) {
	// An in-memory index must serve concurrent queries safely (run under
	// -race in CI). DiskResident indexes carry mutable buffer-pool state
	// and are documented as single-reader.
	net := testNetwork(t)
	ix := testIndex(t, net)
	rng := rand.New(rand.NewSource(12))
	perm := rng.Perm(net.NumVertices())
	vertices := make([]VertexID, 30)
	for i := range vertices {
		vertices[i] = VertexID(perm[i])
	}
	objs := mustObjects(t, net, vertices)

	var wg sync.WaitGroup
	errs := make(chan string, 64)
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			r := rand.New(rand.NewSource(seed))
			for i := 0; i < 25; i++ {
				q := VertexID(r.Intn(net.NumVertices()))
				res := ix.NearestNeighbors(objs, q, 3)
				if len(res.Neighbors) != 3 {
					errs <- "short result"
					return
				}
				d := ix.Distance(q, res.Neighbors[0].Vertex)
				if math.Abs(d-res.Neighbors[0].Dist) > 1e-9 {
					errs <- "distance mismatch"
					return
				}
				_ = ix.ShortestPath(q, res.Neighbors[2].Vertex)
			}
		}(int64(w))
	}
	wg.Wait()
	close(errs)
	for e := range errs {
		t.Fatal(e)
	}
}

func TestProximityBoundedIndexPublicAPI(t *testing.T) {
	net := testNetwork(t)
	ix, err := BuildIndex(net, BuildOptions{ProximityRadius: 0.25})
	if err != nil {
		t.Fatal(err)
	}
	if ix.Radius() != 0.25 {
		t.Fatalf("Radius = %v", ix.Radius())
	}
	full := testIndex(t, net)
	if ix.Stats().TotalBlocks >= full.Stats().TotalBlocks {
		t.Fatal("proximity bound did not shrink the index")
	}

	rng := rand.New(rand.NewSource(14))
	sawNear, sawFar := false, false
	for trial := 0; trial < 200 && !(sawNear && sawFar); trial++ {
		u := VertexID(rng.Intn(net.NumVertices()))
		v := VertexID(rng.Intn(net.NumVertices()))
		if u == v {
			continue
		}
		want := full.Distance(u, v)
		got := ix.Distance(u, v)
		if want <= 0.25 {
			sawNear = true
			if math.Abs(got-want) > 1e-9 {
				t.Fatalf("in-range distance %v want %v", got, want)
			}
		} else {
			sawFar = true
			if !math.IsInf(got, 1) {
				t.Fatalf("out-of-range distance %v, want +Inf", got)
			}
			if ix.ShortestPath(u, v) != nil {
				t.Fatal("out-of-range path not nil")
			}
			r := ix.NewRefiner(u, v)
			if !r.OutOfRange() {
				t.Fatal("refiner should report out of range")
			}
		}
	}
	if !sawNear || !sawFar {
		t.Fatal("test radius did not exercise both regimes")
	}

	// Persistence keeps the bound.
	var buf bytes.Buffer
	if _, err := ix.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := LoadIndex(bytes.NewReader(buf.Bytes()), net, BuildOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if back.Radius() != 0.25 {
		t.Fatalf("radius lost on reload: %v", back.Radius())
	}
}
