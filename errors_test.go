package silc

import (
	"context"
	"errors"
	"math"
	"testing"
)

// engineFixtures builds one monolithic and one sharded engine over the same
// network, so every boundary-validation property is asserted on both.
func engineFixtures(t *testing.T) (*Network, []*Engine) {
	t.Helper()
	net, err := GenerateRoadNetwork(RoadNetworkOptions{Rows: 10, Cols: 10, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	mono, err := BuildIndex(net, BuildOptions{})
	if err != nil {
		t.Fatal(err)
	}
	sharded, err := BuildShardedIndex(net, ShardedBuildOptions{Partitions: 4})
	if err != nil {
		t.Fatal(err)
	}
	return net, []*Engine{mono.Engine(), sharded.Engine()}
}

// TestObjectSetValidation is the regression test for the boundary bug:
// NewObjectSet used to accept any VertexID and let the PMR build index out
// of bounds at query time.
func TestObjectSetValidation(t *testing.T) {
	net, _ := engineFixtures(t)
	n := net.NumVertices()

	if _, err := NewObjectSet(nil, []VertexID{0}); !errors.Is(err, ErrNilNetwork) {
		t.Fatalf("nil network: got %v, want ErrNilNetwork", err)
	}
	if _, err := NewObjectSet(net, nil); !errors.Is(err, ErrEmptyObjects) {
		t.Fatalf("empty vertices: got %v, want ErrEmptyObjects", err)
	}
	if _, err := NewObjectSet(net, []VertexID{0, VertexID(n)}); !errors.Is(err, ErrVertexRange) {
		t.Fatalf("vertex == n: got %v, want ErrVertexRange", err)
	}
	if _, err := NewObjectSet(net, []VertexID{-1}); !errors.Is(err, ErrVertexRange) {
		t.Fatalf("negative vertex: got %v, want ErrVertexRange", err)
	}
	if _, err := NewObjectSetFromPoints(net, nil); !errors.Is(err, ErrEmptyObjects) {
		t.Fatalf("empty points: got %v, want ErrEmptyObjects", err)
	}
	if _, err := NewObjectSet(net, []VertexID{0, 1, VertexID(n - 1)}); err != nil {
		t.Fatalf("valid vertices rejected: %v", err)
	}
}

// TestQueryValidation checks that every Engine query entry point returns
// typed errors — out-of-range vertices, k ≤ 0, nil/empty object sets, bad
// radii and epsilons — on both the monolithic and the sharded engine.
func TestQueryValidation(t *testing.T) {
	net, engines := engineFixtures(t)
	n := net.NumVertices()
	objs := mustObjects(t, net, []VertexID{0, 1, 2, 5, 9})
	ctx := context.Background()
	bad := VertexID(n + 7)

	for i, eng := range engines {
		tag := []string{"mono", "sharded"}[i]

		if _, err := eng.Query(ctx, objs, bad, 3); !errors.Is(err, ErrVertexRange) {
			t.Fatalf("%s: Query bad q: got %v, want ErrVertexRange", tag, err)
		}
		if _, err := eng.Query(ctx, objs, 0, 0); !errors.Is(err, ErrBadK) {
			t.Fatalf("%s: Query k=0: got %v, want ErrBadK", tag, err)
		}
		if _, err := eng.Query(ctx, objs, 0, -2); !errors.Is(err, ErrBadK) {
			t.Fatalf("%s: Query k<0: got %v, want ErrBadK", tag, err)
		}
		if _, err := eng.Query(ctx, nil, 0, 3); !errors.Is(err, ErrNilObjects) {
			t.Fatalf("%s: Query nil objs: got %v, want ErrNilObjects", tag, err)
		}
		if _, err := eng.Query(ctx, &ObjectSet{}, 0, 3); !errors.Is(err, ErrNilObjects) {
			t.Fatalf("%s: Query zero-value objs: got %v, want ErrNilObjects", tag, err)
		}
		if _, err := eng.Query(ctx, objs, 0, 3, WithEpsilon(-0.5)); !errors.Is(err, ErrBadEpsilon) {
			t.Fatalf("%s: negative epsilon: got %v, want ErrBadEpsilon", tag, err)
		}
		if _, err := eng.Query(ctx, objs, 0, 3, WithEpsilon(math.NaN())); !errors.Is(err, ErrBadEpsilon) {
			t.Fatalf("%s: NaN epsilon: got %v, want ErrBadEpsilon", tag, err)
		}
		if _, err := eng.Query(ctx, objs, 0, 3, WithMaxDistance(-1)); !errors.Is(err, ErrBadRadius) {
			t.Fatalf("%s: negative max distance: got %v, want ErrBadRadius", tag, err)
		}

		if _, err := eng.Distance(ctx, bad, 0); !errors.Is(err, ErrVertexRange) {
			t.Fatalf("%s: Distance bad src: got %v, want ErrVertexRange", tag, err)
		}
		if _, err := eng.Distance(ctx, 0, -1); !errors.Is(err, ErrVertexRange) {
			t.Fatalf("%s: Distance bad dst: got %v, want ErrVertexRange", tag, err)
		}
		if _, err := eng.DistanceInterval(ctx, bad, 0); !errors.Is(err, ErrVertexRange) {
			t.Fatalf("%s: DistanceInterval bad src: got %v, want ErrVertexRange", tag, err)
		}
		if _, err := eng.ShortestPath(ctx, 0, bad); !errors.Is(err, ErrVertexRange) {
			t.Fatalf("%s: ShortestPath bad dst: got %v, want ErrVertexRange", tag, err)
		}
		if _, err := eng.IsCloser(ctx, 0, 1, bad); !errors.Is(err, ErrVertexRange) {
			t.Fatalf("%s: IsCloser bad b: got %v, want ErrVertexRange", tag, err)
		}

		if _, err := eng.WithinDistance(ctx, objs, 0, -0.5); !errors.Is(err, ErrBadRadius) {
			t.Fatalf("%s: negative radius: got %v, want ErrBadRadius", tag, err)
		}
		if _, err := eng.WithinDistance(ctx, objs, 0, math.NaN()); !errors.Is(err, ErrBadRadius) {
			t.Fatalf("%s: NaN radius: got %v, want ErrBadRadius", tag, err)
		}

		if _, err := eng.QueryBatch(ctx, objs, []VertexID{0, bad, 1}, 2); !errors.Is(err, ErrVertexRange) {
			t.Fatalf("%s: batch bad vertex: got %v, want ErrVertexRange", tag, err)
		}
		if _, err := eng.QueryBatch(ctx, objs, []VertexID{0, 1}, 0); !errors.Is(err, ErrBadK) {
			t.Fatalf("%s: batch k=0: got %v, want ErrBadK", tag, err)
		}

		// The iterator yields its validation error as the final element.
		var iterErr error
		for _, err := range eng.Neighbors(ctx, objs, bad) {
			iterErr = err
		}
		if !errors.Is(iterErr, ErrVertexRange) {
			t.Fatalf("%s: Neighbors bad q: got %v, want ErrVertexRange", tag, iterErr)
		}

		// Valid calls still work after all that.
		res, err := eng.Query(ctx, objs, 0, 3)
		if err != nil || len(res.Neighbors) != 3 {
			t.Fatalf("%s: valid query failed: %v (%d neighbors)", tag, err, len(res.Neighbors))
		}
	}
}

// TestLegacyShimsStillServe locks in that the deprecated pre-Engine surface
// (PR-3 call sites) keeps compiling and answering through the generic path.
func TestLegacyShimsStillServe(t *testing.T) {
	net, _ := engineFixtures(t)
	mono, err := BuildIndex(net, BuildOptions{})
	if err != nil {
		t.Fatal(err)
	}
	objs := mustObjects(t, net, []VertexID{1, 3, 7, 11, 20})

	res := mono.Query(objs, 0, 3, MethodKNN)
	if len(res.Neighbors) != 3 {
		t.Fatalf("legacy Query: %d neighbors", len(res.Neighbors))
	}
	if got := mono.NearestNeighbors(objs, 0, 2); len(got.Neighbors) != 2 || !got.Neighbors[0].Exact {
		t.Fatalf("legacy NearestNeighbors: %+v", got.Neighbors)
	}
	if d := mono.Distance(0, 5); d <= 0 || math.IsInf(d, 1) {
		t.Fatalf("legacy Distance: %v", d)
	}
	if k := mono.QueryBatch(objs, []VertexID{0, 4}, 2, MethodINN); len(k.Results) != 2 {
		t.Fatalf("legacy QueryBatch: %d results", len(k.Results))
	}
	// k ≤ 0 keeps its historical no-panic empty-result behavior.
	if got := mono.Query(objs, 0, 0, MethodKNN); len(got.Neighbors) != 0 {
		t.Fatalf("legacy k=0: %+v", got)
	}
	br := mono.Browse(objs, 0)
	if _, ok := br.Next(); !ok || br.Err() != nil {
		t.Fatalf("legacy Browse failed: %v", br.Err())
	}
}
