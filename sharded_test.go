package silc

import (
	"bytes"
	"math"
	"math/rand"
	"testing"
)

func buildShardedPair(t *testing.T) (*Network, *Index, *ShardedIndex) {
	t.Helper()
	net, err := GenerateRoadNetwork(RoadNetworkOptions{Rows: 16, Cols: 16, Seed: 11})
	if err != nil {
		t.Fatal(err)
	}
	mono, err := BuildIndex(net, BuildOptions{})
	if err != nil {
		t.Fatal(err)
	}
	sharded, err := BuildShardedIndex(net, ShardedBuildOptions{Partitions: 5})
	if err != nil {
		t.Fatal(err)
	}
	return net, mono, sharded
}

// TestShardedIndexMatchesMonolithic checks the public sharded surface
// end to end against the monolithic index (the exhaustive ground-truth
// property test lives in internal/partition).
func TestShardedIndexMatchesMonolithic(t *testing.T) {
	net, mono, sharded := buildShardedPair(t)
	n := net.NumVertices()
	if got := sharded.NumPartitions(); got != 5 {
		t.Fatalf("NumPartitions = %d, want 5", got)
	}
	st := sharded.Stats()
	if st.BoundaryVertices == 0 || st.CellBlocks == 0 {
		t.Fatalf("implausible sharded stats: %+v", st)
	}
	if st.CellBlocks >= mono.Stats().TotalBlocks {
		t.Fatalf("sharded holds %d Morton blocks, monolithic only %d — sharding should shrink block storage",
			st.CellBlocks, mono.Stats().TotalBlocks)
	}

	rng := rand.New(rand.NewSource(7))
	for i := 0; i < 400; i++ {
		u := VertexID(rng.Intn(n))
		v := VertexID(rng.Intn(n))
		md := mono.Distance(u, v)
		sd := sharded.Distance(u, v)
		if math.Abs(md-sd) > 1e-9*(1+md) {
			t.Fatalf("Distance(%d,%d): mono %v sharded %v", u, v, md, sd)
		}
		iv := sharded.DistanceInterval(u, v)
		if iv.Lo > md+1e-9 || iv.Hi < md-1e-9 {
			t.Fatalf("interval [%v,%v] of (%d,%d) excludes %v", iv.Lo, iv.Hi, u, v, md)
		}
		a, b := VertexID(rng.Intn(n)), VertexID(rng.Intn(n))
		if mono.IsCloser(u, a, b) != sharded.IsCloser(u, a, b) {
			// Legitimate only on a distance tie.
			da, db := mono.Distance(u, a), mono.Distance(u, b)
			if math.Abs(da-db) > 1e-9*(1+da) {
				t.Fatalf("IsCloser(%d,%d,%d) differs without a tie (%v vs %v)", u, a, b, da, db)
			}
		}
	}

	objs := mustObjects(t, net, randomVertices(rng, n, n/10))
	for i := 0; i < 10; i++ {
		q := VertexID(rng.Intn(n))
		mr := mono.NearestNeighbors(objs, q, 5)
		sr := sharded.NearestNeighbors(objs, q, 5)
		if len(mr.Neighbors) != len(sr.Neighbors) {
			t.Fatalf("kNN sizes differ at q=%d", q)
		}
		for j := range mr.Neighbors {
			if math.Abs(mr.Neighbors[j].Dist-sr.Neighbors[j].Dist) > 1e-9*(1+mr.Neighbors[j].Dist) {
				t.Fatalf("q=%d neighbor %d: mono %v sharded %v", q, j,
					mr.Neighbors[j].Dist, sr.Neighbors[j].Dist)
			}
			if !sr.Neighbors[j].Exact {
				t.Fatalf("NearestNeighbors left an inexact distance at q=%d", q)
			}
		}
		// Browsing streams the same distances incrementally.
		br := sharded.Browse(objs, q)
		for j := 0; j < 5; j++ {
			nb, ok := br.Next()
			if !ok {
				t.Fatalf("browser exhausted at %d", j)
			}
			if math.Abs(nb.Dist-mr.Neighbors[j].Dist) > 1e-9*(1+nb.Dist) {
				t.Fatalf("browser q=%d rank %d: %v, kNN says %v", q, j, nb.Dist, mr.Neighbors[j].Dist)
			}
		}
	}

	queries := randomVertices(rng, n, 40)
	batch := sharded.QueryBatch(objs, queries, 3, MethodKNN)
	if len(batch.Results) != len(queries) || batch.Stats.Queries != len(queries) {
		t.Fatalf("batch shape wrong: %+v", batch.Stats)
	}

	radius := mono.Distance(VertexID(0), VertexID(n/2)) / 2
	mres := mono.WithinDistance(objs, VertexID(0), radius)
	sres := sharded.WithinDistance(objs, VertexID(0), radius)
	if len(mres.Neighbors) != len(sres.Neighbors) {
		t.Fatalf("range sizes differ: mono %d sharded %d", len(mres.Neighbors), len(sres.Neighbors))
	}

	// Both indexes expose the unified serving engine.
	for _, e := range []*Engine{mono.Engine(), sharded.Engine()} {
		if e.Network().NumVertices() != n {
			t.Fatal("Engine.Network mismatch")
		}
	}
}

func TestShardedIndexPersistence(t *testing.T) {
	net, _, sharded := buildShardedPair(t)
	var buf bytes.Buffer
	if _, err := sharded.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	loaded, err := LoadShardedIndex(bytes.NewReader(buf.Bytes()), net, ShardedBuildOptions{DiskResident: true})
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(3))
	for i := 0; i < 200; i++ {
		u := VertexID(rng.Intn(net.NumVertices()))
		v := VertexID(rng.Intn(net.NumVertices()))
		if a, b := sharded.Distance(u, v), loaded.Distance(u, v); a != b {
			t.Fatalf("Distance(%d,%d) differs after reload: %v vs %v", u, v, a, b)
		}
	}
	if io := loaded.IOStats(); io.PageHits+io.PageMisses == 0 {
		t.Fatal("disk-resident reload recorded no page traffic")
	}
	loaded.ResetIOStats()
	if io := loaded.IOStats(); io.PageHits+io.PageMisses != 0 {
		t.Fatal("ResetIOStats left counters non-zero")
	}
}

func randomVertices(rng *rand.Rand, n, k int) []VertexID {
	out := make([]VertexID, k)
	for i := range out {
		out[i] = VertexID(rng.Intn(n))
	}
	return out
}
