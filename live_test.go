package silc

import (
	"context"
	"errors"
	"math"
	"math/rand"
	"sort"
	"sync"
	"testing"
	"time"

	"silc/internal/oracle"
)

// TestNewObjectSetFromPointsDedupe is the regression test for the phantom-
// duplicate bug: distinct points snapping to the same vertex used to create
// one object each, so kNN results reported the same network location k times.
// They must collapse into one object, ids dense in first-appearance order.
func TestNewObjectSetFromPointsDedupe(t *testing.T) {
	net := testNetwork(t)
	p5, p9 := net.Point(5), net.Point(9)
	pts := []Point{
		{X: p5.X + 1e-9, Y: p5.Y}, // snaps to vertex 5
		{X: p9.X, Y: p9.Y - 1e-9}, // snaps to vertex 9
		{X: p5.X - 1e-9, Y: p5.Y}, // vertex 5 again: must not duplicate
		p5,                        // and again, exactly on it
	}
	objs, err := NewObjectSetFromPoints(net, pts)
	if err != nil {
		t.Fatal(err)
	}
	if objs.Len() != 2 {
		t.Fatalf("4 points on 2 vertices made %d objects, want 2", objs.Len())
	}
	if objs.Vertex(0) != 5 || objs.Vertex(1) != 9 {
		t.Fatalf("object vertices = %d,%d, want 5,9 (first-appearance order)",
			objs.Vertex(0), objs.Vertex(1))
	}
	// A kNN from vertex 5 must see ONE object at distance zero, not phantom
	// duplicates of the same location.
	eng := testIndex(t, net).Engine()
	res, err := eng.Query(context.Background(), objs, 5, 2, WithExactDistances())
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Neighbors) != 2 || res.Neighbors[0].Dist != 0 || res.Neighbors[1].Dist == 0 {
		t.Fatalf("kNN over deduped set: %+v", res.Neighbors)
	}
}

// TestLiveObjectsLifecycle covers the CRUD surface end to end: version
// monotonicity, snapshot pinning (a pinned view is immutable under later
// mutations), version stamping on results, and the typed errors.
func TestLiveObjectsLifecycle(t *testing.T) {
	net := testNetwork(t)
	eng := testIndex(t, net).Engine()
	ctx := context.Background()
	live, err := NewLiveObjects(net, LiveObjectsOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer live.Close()

	// An empty world is a valid view but no query target.
	if _, err := eng.Query(ctx, live.View(), 0, 3); !errors.Is(err, ErrEmptyObjects) {
		t.Fatalf("empty live world: got %v, want ErrEmptyObjects", err)
	}

	id0, v1, err := live.Insert(5)
	if err != nil {
		t.Fatal(err)
	}
	id1, v2, err := live.Insert(9)
	if err != nil {
		t.Fatal(err)
	}
	if v2 <= v1 || live.Version() != v2 || live.Len() != 2 {
		t.Fatalf("versions %d,%d (store %d), len %d", v1, v2, live.Version(), live.Len())
	}
	if _, _, err := live.Insert(VertexID(net.NumVertices())); !errors.Is(err, ErrVertexRange) {
		t.Fatalf("out-of-range insert: got %v", err)
	}
	if _, err := live.Move(999, 0); !errors.Is(err, ErrUnknownObject) {
		t.Fatalf("move of unknown id: got %v", err)
	}
	if _, err := live.Remove(999); !errors.Is(err, ErrUnknownObject) {
		t.Fatalf("remove of unknown id: got %v", err)
	}

	view := live.View()
	if view.Version() != v2 {
		t.Fatalf("view version %d, want %d", view.Version(), v2)
	}
	if again := live.View(); again != view {
		t.Fatal("View with an unchanged store rebuilt the wrapper (cache miss)")
	}
	res, err := eng.Query(ctx, view, 5, 1, WithExactDistances())
	if err != nil {
		t.Fatal(err)
	}
	if res.Stats.SnapshotVersion != v2 {
		t.Fatalf("stamped version %d, want %d", res.Stats.SnapshotVersion, v2)
	}
	if len(res.Neighbors) != 1 || res.Neighbors[0].ID != id0 || res.Neighbors[0].Dist != 0 {
		t.Fatalf("kNN at the object's own vertex: %+v", res.Neighbors)
	}

	// The pinned view is exact for ITS version however the world moves on.
	v3, err := live.Remove(id0)
	if err != nil {
		t.Fatal(err)
	}
	res, err = eng.Query(ctx, view, 5, 1, WithExactDistances())
	if err != nil {
		t.Fatal(err)
	}
	if res.Neighbors[0].ID != id0 || res.Stats.SnapshotVersion != v2 {
		t.Fatalf("pinned view leaked a later removal: %+v (version %d)",
			res.Neighbors, res.Stats.SnapshotVersion)
	}
	// A fresh view sees it.
	res, err = eng.Query(ctx, live.View(), 5, 1, WithExactDistances())
	if err != nil {
		t.Fatal(err)
	}
	if res.Neighbors[0].ID != id1 || res.Stats.SnapshotVersion != v3 {
		t.Fatalf("fresh view after removal: %+v (version %d)", res.Neighbors, res.Stats.SnapshotVersion)
	}

	// List and Vertex agree on the one survivor.
	list, ver := live.List()
	if ver != v3 || len(list) != 1 || list[0].ID != id1 || list[0].Vertex != 9 {
		t.Fatalf("List = %+v (version %d)", list, ver)
	}
	if v, ok := live.Vertex(id1); !ok || v != 9 {
		t.Fatalf("Vertex(%d) = %d,%v", id1, v, ok)
	}
	if _, ok := live.Vertex(id0); ok {
		t.Fatalf("Vertex of removed id %d still resolves", id0)
	}

	// Every query entry point stamps the snapshot version.
	view = live.View()
	rres, err := eng.WithinDistance(ctx, view, 9, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	if rres.Stats.SnapshotVersion != v3 {
		t.Fatalf("range stamped %d, want %d", rres.Stats.SnapshotVersion, v3)
	}
	var st QueryStats
	for _, err := range eng.Neighbors(ctx, view, 9, WithStats(&st)) {
		if err != nil {
			t.Fatal(err)
		}
		break
	}
	if st.SnapshotVersion != v3 {
		t.Fatalf("neighbors stream stamped %d, want %d", st.SnapshotVersion, v3)
	}
	b, err := eng.Browse(ctx, view, 9)
	if err != nil {
		t.Fatal(err)
	}
	b.Next()
	if got := b.Stats().SnapshotVersion; got != v3 {
		t.Fatalf("browser stamped %d, want %d", got, v3)
	}
	// Static sets stamp zero — the sentinel for "not a live snapshot".
	static := mustObjects(t, net, []VertexID{4, 8})
	sres, err := eng.Query(ctx, static, 4, 1)
	if err != nil {
		t.Fatal(err)
	}
	if sres.Stats.SnapshotVersion != 0 {
		t.Fatalf("static set stamped %d, want 0", sres.Stats.SnapshotVersion)
	}
}

// TestLiveExpire covers the public TTL surface: Expire removes only objects
// idle longer than the horizon, and Move refreshes the clock.
func TestLiveExpire(t *testing.T) {
	net := testNetwork(t)
	live, err := NewLiveObjects(net, LiveObjectsOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer live.Close()
	idOld, _, _ := live.Insert(3)
	idFresh, _, _ := live.Insert(7)
	time.Sleep(30 * time.Millisecond)
	if _, err := live.Move(idFresh, 8); err != nil { // refreshes idFresh's clock
		t.Fatal(err)
	}
	n, _ := live.Expire(20 * time.Millisecond)
	if n != 1 || live.Len() != 1 {
		t.Fatalf("expired %d objects (len %d), want 1 (idle one only)", n, live.Len())
	}
	if _, ok := live.Vertex(idOld); ok {
		t.Fatal("the idle object survived Expire")
	}
	if _, ok := live.Vertex(idFresh); !ok {
		t.Fatal("the refreshed object was expired")
	}
}

// TestLiveSnapshotExactUnderChurn is the oracle property test of the PR: 8
// mutators interleave Insert/Remove/Move while 8 readers pin snapshots and
// run kNN + range queries on every backend variant (monolithic, sharded,
// paged in both encodings, mmap). Every pinned result must be EXACT against
// a Floyd-Warshall oracle evaluated over that snapshot's own object table —
// a reader seeing a half-applied mutation shows up as a wrong distance, a
// shared-state bug as a -race report (scripts/ci.yml runs this package with
// the detector on).
func TestLiveSnapshotExactUnderChurn(t *testing.T) {
	net := testNetwork(t)
	ox, err := oracle.BuildExplicitPaths(net.g)
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	const (
		writers      = 8
		readers      = 8
		opsPerWriter = 120
		readsEach    = 25
		k            = 5
		radius       = 0.3
	)
	for _, ae := range allocEngines(t, net) {
		t.Run(ae.name, func(t *testing.T) {
			live, err := NewLiveObjects(net, LiveObjectsOptions{})
			if err != nil {
				t.Fatal(err)
			}
			defer live.Close()
			// Durable seed objects no mutator ever touches, so no snapshot is
			// empty and every query has at least k candidates.
			for v := 0; v < net.NumVertices(); v += 10 {
				if _, _, err := live.Insert(VertexID(v)); err != nil {
					t.Fatal(err)
				}
			}
			var wg sync.WaitGroup
			for w := 0; w < writers; w++ {
				wg.Add(1)
				go func(w int) {
					defer wg.Done()
					rng := rand.New(rand.NewSource(int64(1000*w + 7)))
					var mine []int32 // ids this mutator inserted and still owns
					for i := 0; i < opsPerWriter; i++ {
						switch rng.Intn(3) {
						case 0:
							id, _, err := live.Insert(VertexID(rng.Intn(net.NumVertices())))
							if err != nil {
								t.Error(err)
								return
							}
							mine = append(mine, id)
						case 1:
							if len(mine) > 0 {
								if _, err := live.Move(mine[rng.Intn(len(mine))], VertexID(rng.Intn(net.NumVertices()))); err != nil {
									t.Error(err)
									return
								}
							}
						case 2:
							if len(mine) > 0 {
								j := rng.Intn(len(mine))
								if _, err := live.Remove(mine[j]); err != nil {
									t.Error(err)
									return
								}
								mine = append(mine[:j], mine[j+1:]...)
							}
						}
					}
				}(w)
			}
			for r := 0; r < readers; r++ {
				wg.Add(1)
				go func(r int) {
					defer wg.Done()
					rng := rand.New(rand.NewSource(int64(2000*r + 11)))
					var lastVer uint64
					for i := 0; i < readsEach; i++ {
						view := live.View()
						if view.Version() < lastVer {
							t.Errorf("reader %d: version went backwards (%d after %d)", r, view.Version(), lastVer)
							return
						}
						lastVer = view.Version()
						// The pinned snapshot's own object table is the ground
						// truth the oracle scores against — NOT the store's
						// current state, which the mutators keep changing.
						objects := view.objs.All()
						q := VertexID(rng.Intn(net.NumVertices()))
						ds := make([]float64, len(objects))
						for j, o := range objects {
							ds[j] = ox.Distance(q, o.Vertex)
						}
						sort.Float64s(ds)

						res, err := ae.eng.Query(ctx, view, q, k, WithExactDistances())
						if err != nil {
							t.Error(err)
							return
						}
						if res.Stats.SnapshotVersion != view.Version() {
							t.Errorf("reader %d: result stamped %d, view pinned %d", r, res.Stats.SnapshotVersion, view.Version())
							return
						}
						want := k
						if want > len(objects) {
							want = len(objects)
						}
						if len(res.Neighbors) != want {
							t.Errorf("reader %d: %d neighbors, want %d", r, len(res.Neighbors), want)
							return
						}
						for j, n := range res.Neighbors {
							if math.Abs(n.Dist-ds[j]) > 1e-9 {
								t.Errorf("reader %d q=%d version %d: rank %d dist %v, oracle %v",
									r, q, view.Version(), j, n.Dist, ds[j])
								return
							}
						}

						rres, err := ae.eng.WithinDistance(ctx, view, q, radius, WithExactDistances())
						if err != nil {
							t.Error(err)
							return
						}
						lo, hi := 0, 0
						for _, d := range ds {
							if d < radius-1e-9 {
								lo++
							}
							if d <= radius+1e-9 {
								hi++
							}
						}
						if len(rres.Neighbors) < lo || len(rres.Neighbors) > hi {
							t.Errorf("reader %d q=%d version %d: range found %d objects, oracle says [%d,%d]",
								r, q, view.Version(), len(rres.Neighbors), lo, hi)
							return
						}
						for _, n := range rres.Neighbors {
							if n.Dist > radius+1e-9 || math.Abs(ox.Distance(q, n.Vertex)-n.Dist) > 1e-9 {
								t.Errorf("reader %d q=%d version %d: range object %d at %v (oracle %v)",
									r, q, view.Version(), n.ID, n.Dist, ox.Distance(q, n.Vertex))
								return
							}
						}
					}
				}(r)
			}
			wg.Wait()
		})
	}
}

// TestWatchDeltas drives Engine.Watch through the full mutation vocabulary
// and checks the delta invariant after every event: applying Added/Changed/
// Removed to the previous neighbor map must reproduce the event's own
// Neighbors exactly — whatever interleaving the store publishes.
func TestWatchDeltas(t *testing.T) {
	net := testNetwork(t)
	eng := testIndex(t, net).Engine()
	live, err := NewLiveObjects(net, LiveObjectsOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer live.Close()

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	events := make(chan WatchEvent, 64)
	errc := make(chan error, 1)
	go func() {
		for ev, err := range eng.Watch(ctx, live, 0, 4) {
			if err != nil {
				errc <- err
				return
			}
			events <- ev
		}
		errc <- nil
	}()

	state := make(map[int32]float64) // reconstructed from deltas
	// waitFor consumes events (validating the delta invariant on each) until
	// one pinning at least minVersion arrives.
	waitFor := func(minVersion uint64) WatchEvent {
		t.Helper()
		deadline := time.After(10 * time.Second)
		for {
			select {
			case ev := <-events:
				for _, n := range ev.Added {
					if _, dup := state[n.ID]; dup {
						t.Fatalf("version %d: Added %d already present", ev.Version, n.ID)
					}
					state[n.ID] = n.Dist
				}
				for _, n := range ev.Changed {
					if _, ok := state[n.ID]; !ok {
						t.Fatalf("version %d: Changed %d was not present", ev.Version, n.ID)
					}
					state[n.ID] = n.Dist
				}
				for _, id := range ev.Removed {
					if _, ok := state[id]; !ok {
						t.Fatalf("version %d: Removed %d was not present", ev.Version, id)
					}
					delete(state, id)
				}
				if len(state) != len(ev.Neighbors) {
					t.Fatalf("version %d: deltas rebuild %d neighbors, event has %d", ev.Version, len(state), len(ev.Neighbors))
				}
				for _, n := range ev.Neighbors {
					if d, ok := state[n.ID]; !ok || d != n.Dist {
						t.Fatalf("version %d: delta state has %d at %v, event at %v", ev.Version, n.ID, d, n.Dist)
					}
				}
				if ev.Version >= minVersion {
					return ev
				}
			case err := <-errc:
				t.Fatalf("watch ended early: %v", err)
			case <-deadline:
				t.Fatalf("no event pinning version >= %d", minVersion)
			}
		}
	}

	// Initial event: the empty world is a result, not an error.
	if ev := waitFor(0); len(ev.Neighbors) != 0 {
		t.Fatalf("initial event over an empty world: %+v", ev)
	}
	id0, ver, err := live.Insert(3)
	if err != nil {
		t.Fatal(err)
	}
	if ev := waitFor(ver); len(ev.Neighbors) != 1 || ev.Neighbors[0].ID != id0 {
		t.Fatalf("after first insert: %+v", ev)
	}
	id1, ver, err := live.Insert(7)
	if err != nil {
		t.Fatal(err)
	}
	if ev := waitFor(ver); len(ev.Neighbors) != 2 {
		t.Fatalf("after second insert: %+v", ev)
	}
	ver, err = live.Move(id0, 12)
	if err != nil {
		t.Fatal(err)
	}
	ev := waitFor(ver)
	found := false
	for _, n := range ev.Neighbors {
		if n.ID == id0 && n.Vertex == 12 {
			found = true
		}
	}
	if !found {
		t.Fatalf("after move, id %d not reported at vertex 12: %+v", id0, ev)
	}
	ver, err = live.Remove(id1)
	if err != nil {
		t.Fatal(err)
	}
	ev = waitFor(ver)
	for _, n := range ev.Neighbors {
		if n.ID == id1 {
			t.Fatalf("removed id %d still in the top-k: %+v", id1, ev)
		}
	}

	cancel()
	select {
	case err := <-errc:
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("watch ended with %v, want context.Canceled", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("watch did not end after cancellation")
	}
}

// TestWatchValidation: the argument checks fire as the stream's first (and
// only) element.
func TestWatchValidation(t *testing.T) {
	net := testNetwork(t)
	eng := testIndex(t, net).Engine()
	live, err := NewLiveObjects(net, LiveObjectsOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer live.Close()
	ctx := context.Background()
	firstErr := func(live *LiveObjects, q VertexID, k int) error {
		for _, err := range eng.Watch(ctx, live, q, k) {
			return err
		}
		return nil
	}
	if err := firstErr(nil, 0, 3); !errors.Is(err, ErrNilObjects) {
		t.Fatalf("nil live: %v", err)
	}
	if err := firstErr(live, -1, 3); !errors.Is(err, ErrVertexRange) {
		t.Fatalf("bad q: %v", err)
	}
	if err := firstErr(live, 0, 0); !errors.Is(err, ErrBadK) {
		t.Fatalf("bad k: %v", err)
	}
}
