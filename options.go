package silc

import (
	"fmt"
	"math"
)

// Option configures one query on an Engine. Options replace the positional
// method/worker arguments of the pre-Engine surface: every Engine query
// entry point accepts any combination, and each documents which options it
// honors (the rest are ignored).
type Option func(*queryOptions)

// queryOptions is the resolved option set of one query.
type queryOptions struct {
	method    Method
	epsilon   float64
	maxDist   float64 // +Inf = unbounded
	workers   int
	exact     bool
	statsInto *QueryStats
}

// defaultOptions returns the exact, unbounded, MethodKNN defaults.
func defaultOptions() queryOptions {
	return queryOptions{method: MethodKNN, maxDist: math.Inf(1)}
}

// resolveOptions applies opts over the defaults and validates the knob
// values, so every query entry point rejects bad options uniformly.
// Option application lives in applyOptions so that the common zero-option
// call never heap-allocates: opt(&o) is an indirect call, which makes
// escape analysis move o to the heap in any function containing it.
func resolveOptions(opts []Option) (queryOptions, error) {
	o := defaultOptions()
	if len(opts) > 0 {
		o = applyOptions(opts)
	}
	if o.method < MethodKNN || o.method > MethodIER {
		return o, fmt.Errorf("%w %d", ErrBadMethod, o.method)
	}
	if math.IsNaN(o.epsilon) || math.IsInf(o.epsilon, 0) || o.epsilon < 0 {
		return o, fmt.Errorf("%w: got %v", ErrBadEpsilon, o.epsilon)
	}
	if err := checkRadius(o.maxDist); err != nil {
		return o, err
	}
	return o, nil
}

// applyOptions folds opts over the defaults. The receiver copy escapes
// (its address is passed to caller-supplied closures), costing one
// allocation — paid only by calls that actually pass options.
func applyOptions(opts []Option) queryOptions {
	o := defaultOptions()
	for _, opt := range opts {
		opt(&o)
	}
	return o
}

// WithMethod selects the kNN algorithm (default MethodKNN). Honored by
// Query and QueryBatch; Neighbors always streams incrementally (INN).
func WithMethod(m Method) Option {
	return func(o *queryOptions) { o.method = m }
}

// WithEpsilon relaxes rank certification to ε-approximate: a neighbor is
// reported as soon as its distance interval satisfies δ⁺ ≤ (1+ε)·δ⁻, which
// certifies its true network distance within a (1+ε) factor of the true
// distance at that rank — and, since reported distances are interval lower
// bounds, every reported distance d satisfies d ≤ true ≤ (1+ε)·d. Larger ε
// means fewer progressive refinements. ε = 0 (the default) keeps the
// paper's exact-rank contract. Honored by Query, QueryBatch, and Neighbors;
// the exact INE/IER baselines ignore it.
func WithEpsilon(eps float64) Option {
	return func(o *queryOptions) { o.epsilon = eps }
}

// WithMaxDistance bounds results to network distance ≤ d — the hybrid
// kNN∩range query on Query/QueryBatch (up to k neighbors, all within d) and
// a stream cutoff on Neighbors. d = +Inf (the default) disables the bound;
// d = 0 is a real bound (only objects at distance zero), consistent with
// WithinDistance's radius semantics. Negative or NaN values return
// ErrBadRadius from the query.
func WithMaxDistance(d float64) Option {
	return func(o *queryOptions) { o.maxDist = d }
}

// WithWorkers bounds the worker pool of QueryBatch (default GOMAXPROCS;
// values ≤ 0 select the default). Single queries ignore it.
func WithWorkers(n int) Option {
	return func(o *queryOptions) { o.workers = n }
}

// WithStats points a streaming query at a statistics sink: Neighbors
// updates *dst with the stream's cumulative statistics (lookups,
// refinements, buffer-pool traffic) after every yielded neighbor, so *dst
// holds the final numbers when the sequence ends however it ends. Query,
// QueryBatch, and WithinDistance report statistics on their Result instead
// and ignore this option.
func WithStats(dst *QueryStats) Option {
	return func(o *queryOptions) { o.statsInto = dst }
}

// WithExactDistances refines every reported neighbor's distance to exact
// before returning, like the classic NearestNeighbors call. Without it,
// distances are refined only as far as ranking requires (the paper's
// contract) — Exact is set per neighbor. Combined with WithEpsilon the
// ranking stays ε-approximate but the distances reported for the chosen
// neighbors are exact. Honored by Query and QueryBatch.
func WithExactDistances() Option {
	return func(o *queryOptions) { o.exact = true }
}
