package silc

import (
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"silc/internal/core"
)

// BatchStats aggregates one QueryBatch execution.
type BatchStats struct {
	// Queries is the number of queries answered.
	Queries int
	// Workers is the worker-pool size the batch ran with.
	Workers int
	// Wall is the end-to-end elapsed time of the batch.
	Wall time.Duration
	// QPS is Queries divided by Wall.
	QPS float64
	// TotalCPU sums the per-query computation times across workers; on a
	// multi-core machine it exceeds Wall when the pool actually runs in
	// parallel.
	TotalCPU time.Duration
	// PageHits / PageMisses / IOTime sum the per-query buffer-pool traffic
	// (DiskResident indexes; zeros otherwise).
	PageHits   int64
	PageMisses int64
	IOTime     time.Duration
}

// BatchResult is the outcome of QueryBatch: one Result per query vertex, in
// input order, plus aggregate statistics.
type BatchResult struct {
	Results []Result
	Stats   BatchStats
}

// QueryBatch answers one kNN query per vertex in queries over a shared
// object set, using a bounded worker pool of GOMAXPROCS goroutines. Every
// index — including DiskResident ones — supports this: queries share the
// sharded buffer pool and each carries its own statistics context, so
// Results[i].Stats reports exactly query i's traffic. Results are in input
// order.
func (ix *Index) QueryBatch(objs *ObjectSet, queries []VertexID, k int, method Method) BatchResult {
	return ix.QueryBatchWorkers(objs, queries, k, method, 0)
}

// QueryBatchWorkers is QueryBatch with an explicit worker-pool bound
// (workers <= 0 selects GOMAXPROCS). The pool is bounded regardless of
// batch size: a batch of a million queries still runs at most workers
// queries at a time.
func (ix *Index) QueryBatchWorkers(objs *ObjectSet, queries []VertexID, k int, method Method, workers int) BatchResult {
	return queryBatchWorkers(ix.ix, objs, queries, k, method, workers)
}

// queryBatchWorkers fans a batch over a bounded worker pool on any
// QueryIndex — shared by the monolithic and sharded public types.
func queryBatchWorkers(qx core.QueryIndex, objs *ObjectSet, queries []VertexID, k int, method Method, workers int) BatchResult {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(queries) {
		workers = len(queries)
	}
	start := time.Now()
	results := make([]Result, len(queries))
	var next atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := next.Add(1) - 1
				if i >= int64(len(queries)) {
					return
				}
				results[i] = runQuery(qx, objs, queries[i], k, method)
			}
		}()
	}
	wg.Wait()

	agg := BatchStats{Queries: len(queries), Workers: workers, Wall: time.Since(start)}
	for i := range results {
		s := &results[i].Stats
		agg.TotalCPU += s.CPUTime
		agg.PageHits += s.PageHits
		agg.PageMisses += s.PageMisses
		agg.IOTime += s.IOTime
	}
	if agg.Wall > 0 {
		agg.QPS = float64(agg.Queries) / agg.Wall.Seconds()
	}
	return BatchResult{Results: results, Stats: agg}
}
