package silc

import (
	"context"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"silc/internal/core"
)

// BatchStats aggregates one QueryBatch execution.
type BatchStats struct {
	// Queries is the number of queries actually ANSWERED — slots holding a
	// real Result. It excludes failed and skipped slots, so throughput
	// derived from it is honest even for partial batches.
	Queries int
	// Failed counts queries abandoned by a per-query fault (a storage
	// error, say); their slots hold zero Results.
	Failed int
	// Skipped counts queries abandoned unanswered by cancellation — never
	// started, or cancelled mid-flight; their slots hold zero Results.
	Skipped int
	// Workers is the worker-pool size the batch ran with.
	Workers int
	// Wall is the end-to-end elapsed time of the batch.
	Wall time.Duration
	// QPS is Queries (answered only) divided by Wall.
	QPS float64
	// TotalCPU sums the per-query computation times across workers; on a
	// multi-core machine it exceeds Wall when the pool actually runs in
	// parallel.
	TotalCPU time.Duration
	// PageHits / PageMisses / IOTime sum the per-query buffer-pool traffic
	// (DiskResident indexes; zeros otherwise).
	PageHits   int64
	PageMisses int64
	IOTime     time.Duration
}

// BatchResult is the outcome of QueryBatch: one Result per query vertex, in
// input order, plus aggregate statistics.
type BatchResult struct {
	Results []Result
	Stats   BatchStats
}

// QueryBatch answers one kNN query per vertex in queries over a shared
// object set, fanned out over a bounded worker pool (WithWorkers; default
// GOMAXPROCS). The pool is bounded regardless of batch size: a batch of a
// million queries still runs at most workers queries at a time. Every
// index — including DiskResident ones — supports this: queries share the
// sharded buffer pool and each carries its own statistics context, so
// Results[i].Stats reports exactly query i's traffic. Results are in input
// order. WithMethod, WithEpsilon, WithMaxDistance, and WithExactDistances
// apply to every query in the batch.
//
// All query vertices are validated up front. Cancelling ctx stops the
// in-flight queries within one refinement step and abandons the unstarted
// remainder; the partial BatchResult is returned alongside ctx's error
// (unfinished slots hold zero Results). A per-query failure that is not a
// cancellation — a storage fault on a DiskResident index, say — does not
// abandon the batch: the failed query's slot stays zero, the rest still
// run, and the first such error is returned alongside the results.
func (e *Engine) QueryBatch(ctx context.Context, objs *ObjectSet, queries []VertexID, k int, opts ...Option) (BatchResult, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	o, err := resolveOptions(opts)
	if err != nil {
		return BatchResult{}, err
	}
	if err := checkObjects(objs); err != nil {
		return BatchResult{}, err
	}
	if err := checkK(k); err != nil {
		return BatchResult{}, err
	}
	n := e.net.NumVertices()
	for i, q := range queries {
		if q < 0 || int(q) >= n {
			return BatchResult{}, fmt.Errorf("%w: queries[%d]=%d, want [0,%d)", ErrVertexRange, i, q, n)
		}
	}

	workers := o.workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(queries) {
		workers = len(queries)
	}
	start := time.Now()
	results := make([]Result, len(queries))
	var next atomic.Int64
	var answered, failed atomic.Int64
	var wg sync.WaitGroup
	var mu sync.Mutex
	var firstErr error
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for ctx.Err() == nil {
				i := next.Add(1) - 1
				if i >= int64(len(queries)) {
					return
				}
				// Batch contexts bypass the engine pool (each worker's
				// queries are independent), so the span is armed and
				// folded here instead of in acquire/release.
				qc := core.NewQueryContextFor(ctx)
				e.beginSpan(qc, opBatch)
				res, err := e.runSpec(qc, objs, queries[i], k, o)
				if err == nil && o.exact {
					err = e.exactify(qc, queries[i], &res)
				}
				if err != nil {
					e.obs.fold(qc)
					if ctx.Err() != nil {
						return // cancelled: leave this and later slots zero
					}
					// A failure local to this query — a storage fault, not
					// a cancellation — must not make the worker abandon the
					// rest of the batch (and with it, silently drop queries
					// no other worker will ever claim): record the first
					// one, leave this slot zero, and keep pulling work.
					failed.Add(1)
					mu.Lock()
					if firstErr == nil {
						firstErr = fmt.Errorf("queries[%d]=%d: %w", i, queries[i], err)
					}
					mu.Unlock()
					continue
				}
				e.foldIO(qc, &res.Stats)
				res.Stats.SnapshotVersion = objs.version
				e.obs.fold(qc)
				results[i] = res
				answered.Add(1)
			}
		}()
	}
	wg.Wait()

	// Answered/failed/skipped must add up to the request: QPS derived from
	// the answered count stays honest when cancellation abandoned slots or
	// per-query faults zeroed them.
	agg := BatchStats{
		Queries: int(answered.Load()),
		Failed:  int(failed.Load()),
		Workers: workers,
		Wall:    time.Since(start),
	}
	agg.Skipped = len(queries) - agg.Queries - agg.Failed
	for i := range results {
		s := &results[i].Stats
		agg.TotalCPU += s.CPUTime
		agg.PageHits += s.PageHits
		agg.PageMisses += s.PageMisses
		agg.IOTime += s.IOTime
	}
	if agg.Wall > 0 {
		agg.QPS = float64(agg.Queries) / agg.Wall.Seconds()
	}
	err = ctx.Err()
	if err == nil {
		err = firstErr // wg.Wait() ordered every worker's write before this read
	}
	return BatchResult{Results: results, Stats: agg}, err
}

// legacyBatch adapts the pre-Engine batch convention (k ≤ 0 or an empty
// query list yields an empty batch; invalid vertices panic at this edge).
// Only the documented validation edge panics: a runtime per-query failure —
// a storage fault on a DiskResident index, say — degrades to the partial
// batch Engine.QueryBatch assembled (failed slots zero), exactly like the
// pre-Engine behavior these shims preserve.
func legacyBatch(e *Engine, objs *ObjectSet, queries []VertexID, k int, method Method, workers int) BatchResult {
	if k <= 0 || len(queries) == 0 {
		return BatchResult{Results: make([]Result, len(queries))}
	}
	br, err := e.QueryBatch(context.Background(), objs, queries, k,
		WithMethod(method), WithWorkers(workers))
	if err != nil && isValidationError(err) {
		panic(err)
	}
	return br
}

// QueryBatch answers one kNN query per vertex in queries over a bounded
// worker pool of GOMAXPROCS goroutines.
//
// Deprecated: use Engine.QueryBatch for cancellation and error returns.
func (ix *Index) QueryBatch(objs *ObjectSet, queries []VertexID, k int, method Method) BatchResult {
	return legacyBatch(ix.eng, objs, queries, k, method, 0)
}

// QueryBatchWorkers is QueryBatch with an explicit worker-pool bound
// (workers <= 0 selects GOMAXPROCS).
//
// Deprecated: use Engine.QueryBatch with WithWorkers.
func (ix *Index) QueryBatchWorkers(objs *ObjectSet, queries []VertexID, k int, method Method, workers int) BatchResult {
	return legacyBatch(ix.eng, objs, queries, k, method, workers)
}
