package silc_test

import (
	"context"
	"fmt"
	"io"
	"math"
	"os"
	"path/filepath"
	"sort"
	"sync"
	"testing"

	"silc"
)

// The equivalence property: the in-RAM Index, the demand-paged PagedIndex
// in both block-page encodings and both page sources (positioned reads and
// mmap, pool squeezed to ~1% to force heavy eviction), and the ShardedIndex
// (in RAM and paged, both encodings) must answer identical KNN, range, and
// Browser queries on every network family. Run under -race in CI, with a
// concurrent phase hammering the shared pool from many goroutines.

type equivEngine struct {
	name  string
	eng   *silc.Engine
	paged bool // reads real pages: the pool-traffic check applies
}

// buildEquivEngines assembles the engine matrix over one network — in-RAM /
// paged-PG1 / paged-PG2 / sharded-SPG1 / sharded-SPG2 crossed with
// positioned reads and mmap — the paged ones reading real pages through a
// deliberately tiny pool. The mmap opens go through temp files; on
// platforms without mmap support they silently degrade to positioned reads,
// which still must answer identically.
func buildEquivEngines(t *testing.T, net *silc.Network) []equivEngine {
	t.Helper()
	dir := t.TempDir()
	ix, err := silc.BuildIndex(net, silc.BuildOptions{})
	if err != nil {
		t.Fatal(err)
	}
	sx, err := silc.BuildShardedIndex(net, silc.ShardedBuildOptions{Partitions: 4})
	if err != nil {
		t.Fatal(err)
	}
	engines := []equivEngine{
		{"in-RAM", ix.Engine(), false},
		{"sharded", sx.Engine(), false},
	}

	writeTemp := func(name string, write func(io.Writer) (int64, error)) string {
		path := filepath.Join(dir, name)
		f, err := os.Create(path)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := write(f); err != nil {
			t.Fatal(err)
		}
		if err := f.Close(); err != nil {
			t.Fatal(err)
		}
		return path
	}

	for _, comp := range []silc.Compression{silc.CompressionNone, silc.CompressionDelta} {
		cix, err := silc.BuildIndex(net, silc.BuildOptions{Compression: comp})
		if err != nil {
			t.Fatal(err)
		}
		csx, err := silc.BuildShardedIndex(net, silc.ShardedBuildOptions{Partitions: 4, Compression: comp})
		if err != nil {
			t.Fatal(err)
		}
		mono := writeTemp("mono-"+comp.String(), cix.WritePaged)
		shard := writeTemp("shard-"+comp.String(), csx.WritePaged)
		for _, mmap := range []bool{false, true} {
			src := "readat"
			if mmap {
				src = "mmap"
			}
			px, err := silc.OpenIndex(mono, silc.BuildOptions{CacheFraction: 0.01, Mmap: mmap})
			if err != nil {
				t.Fatalf("open paged %s %s: %v", comp, src, err)
			}
			t.Cleanup(func() { px.Close() })
			engines = append(engines, equivEngine{fmt.Sprintf("paged-%s-%s", comp, src), px.Engine(), true})
			psx, err := silc.OpenShardedIndex(shard, silc.ShardedBuildOptions{CacheFraction: 0.01, Mmap: mmap})
			if err != nil {
				t.Fatalf("open sharded %s %s: %v", comp, src, err)
			}
			t.Cleanup(func() { psx.Close() })
			engines = append(engines, equivEngine{fmt.Sprintf("sharded-%s-%s", comp, src), psx.Engine(), true})
		}
	}
	return engines
}

func equivNetworks(t *testing.T) map[string]*silc.Network {
	t.Helper()
	road, err := silc.GenerateRoadNetwork(silc.RoadNetworkOptions{Rows: 13, Cols: 13, Seed: 41})
	if err != nil {
		t.Fatal(err)
	}
	grid, err := silc.GenerateGrid(11, 11)
	if err != nil {
		t.Fatal(err)
	}
	ring, err := silc.GenerateRingRadial(5, 14, 7)
	if err != nil {
		t.Fatal(err)
	}
	return map[string]*silc.Network{"road": road, "grid": grid, "ring": ring}
}

// queryAll runs one query mix against an engine and returns a canonical
// result transcript for comparison.
func queryAll(t testing.TB, eng *silc.Engine, objs *silc.ObjectSet, q silc.VertexID) string {
	t.Helper()
	ctx := context.Background()
	var out []string

	res, err := eng.Query(ctx, objs, q, 5, silc.WithExactDistances())
	if err != nil {
		t.Fatalf("knn(%d): %v", q, err)
	}
	for _, n := range res.Neighbors {
		out = append(out, fmt.Sprintf("knn %.9f", n.Dist))
	}

	rng, err := eng.WithinDistance(ctx, objs, q, 0.35, silc.WithExactDistances())
	if err != nil {
		t.Fatalf("range(%d): %v", q, err)
	}
	dists := make([]float64, 0, len(rng.Neighbors))
	for _, n := range rng.Neighbors {
		dists = append(dists, n.Dist)
	}
	sort.Float64s(dists)
	for _, d := range dists {
		out = append(out, fmt.Sprintf("rng %.9f", d))
	}

	count := 0
	for n, err := range eng.Neighbors(ctx, objs, q) {
		if err != nil {
			t.Fatalf("browse(%d): %v", q, err)
		}
		out = append(out, fmt.Sprintf("brw %.9f", n.Dist))
		if count++; count == 6 {
			break
		}
	}
	s := ""
	for _, line := range out {
		s += line + "\n"
	}
	return s
}

// roundTranscript canonicalizes float noise across engines: distances are
// printed to 9 decimals, which is far below any legitimate difference and
// far above cross-engine rounding (closure sums vs refiner sums).
func TestEquivalenceAcrossBackends(t *testing.T) {
	for name, net := range equivNetworks(t) {
		t.Run(name, func(t *testing.T) {
			engines := buildEquivEngines(t, net)
			n := net.NumVertices()
			var objVerts []silc.VertexID
			for v := 0; v < n; v += 4 {
				objVerts = append(objVerts, silc.VertexID(v))
			}

			queries := []silc.VertexID{0, silc.VertexID(n / 3), silc.VertexID(n / 2), silc.VertexID(n - 1)}
			for _, q := range queries {
				var ref string
				for i, ee := range engines {
					objs, err := silc.NewObjectSet(ee.eng.Network(), objVerts)
					if err != nil {
						t.Fatal(err)
					}
					got := queryAll(t, ee.eng, objs, q)
					if i == 0 {
						ref = got
						continue
					}
					if got != ref {
						t.Fatalf("%s: query %d transcript diverges from in-RAM:\n--- in-RAM\n%s--- %s\n%s",
							ee.name, q, ref, ee.name, got)
					}
				}
			}

			// The paged engines must have actually paged: real reads
			// happened and the working set exceeded the squeezed pool.
			// (Under mmap a "read" is the first-touch CRC verification of a
			// mapped page frame — the counters keep working.)
			for _, ee := range engines {
				if !ee.paged {
					continue
				}
				io := ee.eng.IOStats()
				if io.PageReads == 0 {
					t.Fatalf("%s: no actual page reads", ee.name)
				}
				if io.PageMisses == 0 || io.PageHits == 0 {
					t.Fatalf("%s: implausible pool traffic %+v", ee.name, io)
				}
			}
		})
	}
}

// TestEquivalenceConcurrent hammers all four backends from many goroutines
// over the 1%-sized shared pools — the race-detector workout for the store
// (frame cache, tree cache, eviction routing) and the pool.
func TestEquivalenceConcurrent(t *testing.T) {
	net, err := silc.GenerateRoadNetwork(silc.RoadNetworkOptions{Rows: 12, Cols: 12, Seed: 99})
	if err != nil {
		t.Fatal(err)
	}
	engines := buildEquivEngines(t, net)
	n := net.NumVertices()
	var objVerts []silc.VertexID
	for v := 0; v < n; v += 3 {
		objVerts = append(objVerts, silc.VertexID(v))
	}

	const workers = 8
	ctx := context.Background()
	var wg sync.WaitGroup
	errs := make(chan error, workers*len(engines))
	for w := 0; w < workers; w++ {
		for _, ee := range engines {
			wg.Add(1)
			go func(w int, ee equivEngine) {
				defer wg.Done()
				objs, err := silc.NewObjectSet(ee.eng.Network(), objVerts)
				if err != nil {
					errs <- err
					return
				}
				for i := 0; i < 12; i++ {
					q := silc.VertexID((w*131 + i*17) % n)
					res, err := ee.eng.Query(ctx, objs, q, 4, silc.WithExactDistances())
					if err != nil {
						errs <- fmt.Errorf("%s: %w", ee.name, err)
						return
					}
					for j := 1; j < len(res.Neighbors); j++ {
						if res.Neighbors[j].Dist < res.Neighbors[j-1].Dist-1e-12 {
							errs <- fmt.Errorf("%s: unsorted result at query %d", ee.name, q)
							return
						}
					}
				}
			}(w, ee)
		}
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}

	// Cross-check a few distances serially after the storm.
	for _, ee := range engines[1:] {
		for q := 0; q < n; q += 7 {
			want, err := engines[0].eng.Distance(ctx, silc.VertexID(q), silc.VertexID(n-1-q))
			if err != nil {
				t.Fatal(err)
			}
			got, err := ee.eng.Distance(ctx, silc.VertexID(q), silc.VertexID(n-1-q))
			if err != nil {
				t.Fatal(err)
			}
			if math.Abs(want-got) > 1e-9 {
				t.Fatalf("%s: distance %d: %v vs %v", ee.name, q, got, want)
			}
		}
	}
}
